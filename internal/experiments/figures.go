package experiments

import (
	"fmt"
	"sort"

	"stalecert/internal/core"
	"stalecert/internal/report"
	"stalecert/internal/simtime"
	"stalecert/internal/stats"
)

// Figure4 is the monthly key-compromise revocation volume by CA (paper
// Figure 4, log-scale in the paper; we emit raw counts).
func (r *Results) Figure4() *report.Table {
	series := stats.NewMonthlySeries()
	dir := r.World.Dir
	grouped := map[string]string{
		"Entrust":          "Entrust",
		"GoDaddy":          "GoDaddy",
		"Let's Encrypt X3": "ISRG (Let's Encrypt)",
		"Sectigo":          "Sectigo",
	}
	for _, s := range r.KeyComp {
		name := dir.Name(s.Cert.Issuer)
		key, ok := grouped[name]
		if !ok {
			key = "Other"
		}
		series.Add(key, s.EventDay)
	}
	t := &report.Table{
		Title:   "Figure 4: Monthly key compromise volumes by CA",
		Columns: append([]string{"Month"}, series.Keys()...),
	}
	for _, m := range series.Months() {
		row := []any{m.String()}
		for _, k := range series.Keys() {
			row = append(row, series.Count(k, m))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure5a is the monthly count of new registrant-change stale certificates
// and affected e2LDs (paper Figure 5a).
func (r *Results) Figure5a() *report.Table {
	certsByMonth := stats.NewMonthlySeries()
	e2ldFirstMonth := make(map[string]simtime.Month)
	for _, s := range r.RegChange {
		certsByMonth.Add("Certificates", s.EventDay)
		m := s.EventDay.Month()
		if prev, ok := e2ldFirstMonth[s.Domain]; !ok || m < prev {
			e2ldFirstMonth[s.Domain] = m
		}
	}
	for _, m := range e2ldFirstMonth {
		certsByMonth.AddN("e2LDs", m.First(), 1)
	}
	t := &report.Table{
		Title:   "Figure 5a: New monthly stale certificates (registrant change)",
		Columns: []string{"Month", "e2LDs", "Certificates"},
	}
	for _, m := range certsByMonth.Months() {
		t.AddRow(m.String(), certsByMonth.Count("e2LDs", m), certsByMonth.Count("Certificates", m))
	}
	return t
}

// Figure5b breaks the registrant-change stale certificates down by issuer
// around the 2018–2019 spike (paper Figure 5b).
func (r *Results) Figure5b() *report.Table {
	series := stats.NewMonthlySeries()
	dir := r.World.Dir
	tracked := map[string]bool{
		"COMODO ECC DV Secure Server CA 2": true,
		"Let's Encrypt X3":                 true,
		"cPanel, Inc. CA":                  true,
		"CloudFlare ECC CA-2":              true,
	}
	for _, s := range r.RegChange {
		name := dir.Name(s.Cert.Issuer)
		if !tracked[name] {
			name = "Other"
		}
		series.Add(name, s.EventDay)
	}
	t := &report.Table{
		Title:   "Figure 5b: Registrant-change stale certificates by issuer",
		Columns: append([]string{"Month"}, series.Keys()...),
	}
	for _, m := range series.Months() {
		row := []any{m.String()}
		for _, k := range series.Keys() {
			row = append(row, series.Count(k, m))
		}
		t.AddRow(row...)
	}
	return t
}

// FigureGrid is the staleness-day grid used by the CDF figures.
var FigureGrid = stats.Range(0, 400, 40)

// Figure6 is the staleness CDF per third-party method (paper Figure 6).
func (r *Results) Figure6() *report.Series {
	s := report.NewSeries("Figure 6: Third-party staleness CDF", "Staleness (days)", "Proportion")
	s.Add("Domain change", core.StalenessCDF(r.RegChange).Curve(FigureGrid))
	s.Add("Managed TLS dept.", core.StalenessCDF(r.Managed).Curve(FigureGrid))
	s.Add("Key compromise", core.StalenessCDF(r.KeyComp).Curve(FigureGrid))
	return s
}

// Figure6Medians returns the per-method median staleness (the figure's
// headline comparison).
func (r *Results) Figure6Medians() map[core.Method]float64 {
	return map[core.Method]float64{
		core.MethodRegistrantChange: core.StalenessCDF(r.RegChange).Median(),
		core.MethodManagedTLS:       core.StalenessCDF(r.Managed).Median(),
		core.MethodKeyCompromise:    core.StalenessCDF(r.KeyComp).Median(),
	}
}

// Figure7 is the per-event-year staleness CDF for registrant change (paper
// Figure 7, 2016–2021).
func (r *Results) Figure7() *report.Series {
	s := report.NewSeries("Figure 7: Domain owner staleness by year", "Staleness (days)", "Proportion")
	byYear := core.YearlyStalenessCDFs(r.RegChange)
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	grid := stats.Range(0, 1000, 50)
	for _, y := range years {
		if y < 2016 || y > 2021 {
			continue
		}
		s.Add(fmt.Sprint(y), byYear[y].Curve(grid))
	}
	return s
}

// Figure8 is the survival analysis: the proportion of eventually-stale
// certificates not yet stale x days after issuance (paper Figure 8).
func (r *Results) Figure8() *report.Series {
	s := report.NewSeries("Figure 8: Certificate survival rate", "Max validity (days)", "Survival rate")
	s.Add("Domain registrant change", core.SurvivalCDF(r.RegChange).SurvivalCurve(FigureGrid))
	s.Add("Managed TLS departure", core.SurvivalCDF(r.Managed).SurvivalCurve(FigureGrid))
	s.Add("Key compromise", core.SurvivalCDF(r.KeyComp).SurvivalCurve(FigureGrid))
	return s
}

// Figure8At returns the per-method survival rate at a given day (the
// paper's "56% / 49.5% / 1% occur after 90 days").
func (r *Results) Figure8At(day int) map[core.Method]float64 {
	x := float64(day)
	return map[core.Method]float64{
		core.MethodRegistrantChange: core.SurvivalCDF(r.RegChange).SurvivalAt(x),
		core.MethodManagedTLS:       core.SurvivalCDF(r.Managed).SurvivalAt(x),
		core.MethodKeyCompromise:    core.SurvivalCDF(r.KeyComp).SurvivalAt(x),
	}
}

// Figure9Row is one (method, cap) cell of the simulated-staleness analysis.
type Figure9Row struct {
	Method core.Method
	core.CapResult
}

// Figure9 simulates lifetime caps per method (paper Figure 9a–c).
func (r *Results) Figure9(caps []int) []Figure9Row {
	if caps == nil {
		caps = core.StandardCaps
	}
	var out []Figure9Row
	for _, m := range []core.Method{core.MethodKeyCompromise, core.MethodRegistrantChange, core.MethodManagedTLS} {
		for _, res := range core.SimulateCaps(r.ByMethod(m), caps) {
			out = append(out, Figure9Row{Method: m, CapResult: res})
		}
	}
	return out
}

// Figure9Table renders Figure 9 as a table of staleness-day reductions.
func (r *Results) Figure9Table(caps []int) *report.Table {
	t := &report.Table{
		Title: "Figure 9: Simulated staleness under maximum-lifetime caps",
		Columns: []string{"Method", "Cap (days)", "Stale certs", "Remaining",
			"Cert reduction %", "Staleness days", "Capped days", "Day reduction %"},
	}
	for _, row := range r.Figure9(caps) {
		t.AddRow(row.Method.String(), row.CapDays, row.StaleCerts, row.RemainingStale,
			row.StaleCertReductionPct(), row.StalenessDays, row.CappedStaleDays,
			row.StalenessDayReductionPct())
	}
	return t
}

// Headline computes the paper's headline estimate: reductions under a 90-day
// maximum lifetime across all three third-party methods.
type Headline struct {
	CertReductionPct map[core.Method]float64
	DayReductionPct  map[core.Method]float64
	// OverallDayReductionPct pools every third-party stale certificate.
	OverallDayReductionPct float64
	// NewStaleE2LDsPerDay sums the daily e2LD rates (the "15K new domains
	// per day" abstract figure, at simulation scale).
	NewStaleE2LDsPerDay float64
}

// Headline runs the §6 headline analysis at a 90-day cap.
func (r *Results) Headline() Headline {
	h := Headline{
		CertReductionPct: make(map[core.Method]float64),
		DayReductionPct:  make(map[core.Method]float64),
	}
	var pooled []core.StaleCert
	for _, m := range []core.Method{core.MethodKeyCompromise, core.MethodRegistrantChange, core.MethodManagedTLS} {
		stale := r.ByMethod(m)
		res := core.SimulateCap(stale, 90)
		h.CertReductionPct[m] = res.StaleCertReductionPct()
		h.DayReductionPct[m] = res.StalenessDayReductionPct()
		pooled = append(pooled, stale...)
	}
	h.OverallDayReductionPct = core.SimulateCap(pooled, 90).StalenessDayReductionPct()
	rows := r.Table4Rows()
	for _, row := range rows {
		if row.Method != core.MethodRevocation {
			h.NewStaleE2LDsPerDay += row.E2LDsPerDay()
		}
	}
	return h
}
