package experiments

import (
	"context"
	"fmt"

	"stalecert/internal/core"
	"stalecert/internal/crl"
	"stalecert/internal/report"
	"stalecert/internal/revcheck"
	"stalecert/internal/x509sim"
)

// This file implements the discussion-section analyses (§2.4, §7.2) that the
// paper argues qualitatively; the reproduction quantifies them over the
// simulated population.

// crlCheckers builds a revocation checker over every simulated CA.
func (r *Results) crlCheckers() *revcheck.CRLChecker {
	auths := make(map[x509sim.IssuerID]*crl.Authority, len(r.World.CAs))
	for id, c := range r.World.CAs {
		auths[id] = c.Authority()
	}
	return &revcheck.CRLChecker{Authorities: auths}
}

// RevocationEffectiveness evaluates every TLS-client profile against the
// revoked stale-certificate population, with working revocation
// infrastructure and under an on-path interceptor — §2.4's argument that
// revocation is absent or circumventable, in numbers.
func (r *Results) RevocationEffectiveness() *report.Table {
	var certs []*x509sim.Certificate
	for _, s := range r.RevokedAll {
		certs = append(certs, s.Cert)
	}
	now := r.World.Today()
	rows := revcheck.MeasureEffectiveness(context.Background(), certs, now, r.crlCheckers(), nil)

	t := &report.Table{
		Title: "Extension: revocation effectiveness against revoked stale certificates",
		Columns: []string{"Client profile", "Checks?", "Fail mode",
			"Accepted (infra up)", "Accepted (interception)", "Of"},
	}
	for _, row := range rows {
		mode := "-"
		if row.Profile.ChecksRevocation {
			if row.Profile.FailMode == revcheck.HardFail {
				mode = "hard-fail"
			} else {
				mode = "soft-fail"
			}
		}
		t.AddRow(row.Profile.Name, fmt.Sprint(row.Profile.ChecksRevocation), mode,
			row.AcceptedDirect, row.AcceptedIntercepted, row.Total)
	}
	return t
}

// MitigationRow quantifies one §7.2 mitigation against the measured
// third-party staleness.
type MitigationRow struct {
	Name string
	// StaleCertsBefore/After and staleness-day totals under the mitigation.
	StaleCertsBefore int
	StaleCertsAfter  int
	StaleDaysBefore  int
	StaleDaysAfter   int
	Note             string
}

// Mitigations quantifies the paper's §7.2 candidates over the detected
// populations:
//
//   - Keyless SSL / keyless CDNs: the provider never holds customer keys, so
//     managed-TLS departures stop granting third-party key access entirely.
//   - CRLite-style local filters: revocation becomes interception-proof; the
//     revoked stale population is neutralised for clients that deploy it
//     (quantified by filter size vs explicit CRL bytes).
//   - DANE-style TTL binding: the name-to-key cache lives hours, not months;
//     staleness windows collapse to the TTL.
func (r *Results) Mitigations(daneTTLDays int) []MitigationRow {
	if daneTTLDays <= 0 {
		daneTTLDays = 1
	}
	var rows []MitigationRow

	// Keyless SSL: managed-TLS staleness disappears.
	managedDays := 0
	for _, s := range r.Managed {
		managedDays += s.StalenessDays()
	}
	rows = append(rows, MitigationRow{
		Name:             "Keyless SSL (managed TLS)",
		StaleCertsBefore: len(r.Managed),
		StaleCertsAfter:  0,
		StaleDaysBefore:  managedDays,
		StaleDaysAfter:   0,
		Note:             "provider never holds the key; departure leaves nothing behind",
	})

	// CRLite: revoked stale certs stop being usable for any deploying client.
	revDays := 0
	for _, s := range r.RevokedAll {
		revDays += s.StalenessDays()
	}
	revokedSet := make(map[x509sim.Fingerprint]bool, len(r.RevokedAll))
	for _, s := range r.RevokedAll {
		revokedSet[s.Cert.Fingerprint()] = true
	}
	filter, err := revcheck.BuildCRLiteFilter(r.Corpus.Certs(), func(c *x509sim.Certificate) bool {
		return revokedSet[c.Fingerprint()]
	})
	note := "filter build failed"
	if err == nil {
		explicit := len(r.RevokedAll) * 10 // issuer(2)+serial(8) per revocation
		note = fmt.Sprintf("local filter: %d levels, %dB vs %dB explicit list; immune to traffic blocking",
			filter.NumLevels(), filter.SizeBytes(), explicit)
	}
	rows = append(rows, MitigationRow{
		Name:             "CRLite-style filter (revoked)",
		StaleCertsBefore: len(r.RevokedAll),
		StaleCertsAfter:  0,
		StaleDaysBefore:  revDays,
		StaleDaysAfter:   0,
		Note:             note,
	})

	// DANE: every third-party staleness window collapses to the record TTL.
	var pooled []core.StaleCert
	pooled = append(pooled, r.KeyComp...)
	pooled = append(pooled, r.RegChange...)
	pooled = append(pooled, r.Managed...)
	before, after := 0, 0
	for _, s := range pooled {
		d := s.StalenessDays()
		before += d
		if d > daneTTLDays {
			d = daneTTLDays
		}
		after += d
	}
	rows = append(rows, MitigationRow{
		Name:             fmt.Sprintf("DANE-style binding (TTL %dd)", daneTTLDays),
		StaleCertsBefore: len(pooled),
		StaleCertsAfter:  len(pooled),
		StaleDaysBefore:  before,
		StaleDaysAfter:   after,
		Note:             "name-to-key cache expires with the DNS record, not the certificate",
	})
	return rows
}

// MitigationsTable renders Mitigations.
func (r *Results) MitigationsTable(daneTTLDays int) *report.Table {
	t := &report.Table{
		Title: "Extension: §7.2 mitigations quantified",
		Columns: []string{"Mitigation", "Stale certs", "After", "Staleness days",
			"After", "Reduction %", "Note"},
	}
	for _, row := range r.Mitigations(daneTTLDays) {
		red := 0.0
		if row.StaleDaysBefore > 0 {
			red = 100 * float64(row.StaleDaysBefore-row.StaleDaysAfter) / float64(row.StaleDaysBefore)
		}
		t.AddRow(row.Name, row.StaleCertsBefore, row.StaleCertsAfter,
			row.StaleDaysBefore, row.StaleDaysAfter, red, row.Note)
	}
	return t
}
