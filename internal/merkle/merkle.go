// Package merkle implements the RFC 6962 Merkle hash tree that backs the
// Certificate Transparency log simulator: leaf/interior hashing with domain
// separation, signed-tree-head roots, and inclusion and consistency proofs
// with their verifiers.
//
// The tree is append-only. Roots are maintained incrementally with a stack of
// perfect-subtree roots (O(log n) per append); proof generation uses the
// recursive RFC 6962 definitions over the stored leaf hashes, with aligned
// perfect subtrees cached so repeated proofs cost O(log^2 n) instead of O(n).
package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// Hash is a SHA-256 digest.
type Hash [32]byte

// String renders the first 8 bytes in hex.
func (h Hash) String() string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[2*i] = digits[h[i]>>4]
		b[2*i+1] = digits[h[i]&0xf]
	}
	return string(b[:])
}

// LeafHash computes SHA-256(0x00 || data), the RFC 6962 leaf hash.
func LeafHash(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

// NodeHash computes SHA-256(0x01 || left || right), the interior-node hash.
func NodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// EmptyRoot is the root of the empty tree: SHA-256 of the empty string.
func EmptyRoot() Hash { return sha256.Sum256(nil) }

// Tree is an append-only RFC 6962 Merkle tree. The zero value is an empty
// tree ready for use.
type Tree struct {
	leaves []Hash
	// stack holds roots of the maximal perfect subtrees covering the leaves,
	// ordered from largest to smallest; folding it right-to-left yields the
	// current root in O(log n).
	stack []stackEntry
	// cache memoizes roots of aligned perfect subtrees (start, size pow2),
	// which never change once complete.
	cache map[rangeKey]Hash
}

type stackEntry struct {
	root Hash
	size uint64 // power of two
}

type rangeKey struct {
	start, size uint64
}

// Errors returned by proof generation.
var (
	ErrIndexOutOfRange = errors.New("merkle: leaf index out of range")
	ErrSizeOutOfRange  = errors.New("merkle: tree size out of range")
	ErrBadProofSizes   = errors.New("merkle: inconsistent proof sizes")
)

// Size returns the number of leaves.
func (t *Tree) Size() uint64 { return uint64(len(t.leaves)) }

// AppendData hashes data as a leaf and appends it, returning its index.
func (t *Tree) AppendData(data []byte) uint64 {
	return t.AppendLeafHash(LeafHash(data))
}

// AppendLeafHash appends an already-hashed leaf, returning its index.
func (t *Tree) AppendLeafHash(lh Hash) uint64 {
	idx := uint64(len(t.leaves))
	t.leaves = append(t.leaves, lh)
	// Merge equal-sized perfect subtrees like binary counter carries.
	e := stackEntry{root: lh, size: 1}
	for len(t.stack) > 0 && t.stack[len(t.stack)-1].size == e.size {
		top := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		e = stackEntry{root: NodeHash(top.root, e.root), size: e.size * 2}
	}
	t.stack = append(t.stack, e)
	return idx
}

// LeafHashAt returns the stored leaf hash at index i.
func (t *Tree) LeafHashAt(i uint64) (Hash, error) {
	if i >= t.Size() {
		return Hash{}, ErrIndexOutOfRange
	}
	return t.leaves[i], nil
}

// Root returns the current tree root (EmptyRoot for an empty tree).
func (t *Tree) Root() Hash {
	if len(t.stack) == 0 {
		return EmptyRoot()
	}
	r := t.stack[len(t.stack)-1].root
	for i := len(t.stack) - 2; i >= 0; i-- {
		r = NodeHash(t.stack[i].root, r)
	}
	return r
}

// RootAt returns the root of the tree as it was at the given size.
func (t *Tree) RootAt(size uint64) (Hash, error) {
	if size > t.Size() {
		return Hash{}, ErrSizeOutOfRange
	}
	if size == 0 {
		return EmptyRoot(), nil
	}
	return t.rootRange(0, size), nil
}

// rootRange computes MTH(D[start:start+size]) with caching of aligned
// perfect subtrees.
func (t *Tree) rootRange(start, size uint64) Hash {
	if size == 1 {
		return t.leaves[start]
	}
	perfect := size&(size-1) == 0 && start%size == 0
	var key rangeKey
	if perfect {
		key = rangeKey{start, size}
		if h, ok := t.cache[key]; ok {
			return h
		}
	}
	k := largestPowerOfTwoBelow(size)
	h := NodeHash(t.rootRange(start, k), t.rootRange(start+k, size-k))
	if perfect {
		if t.cache == nil {
			t.cache = make(map[rangeKey]Hash)
		}
		t.cache[key] = h
	}
	return h
}

// InclusionProof returns the RFC 6962 audit path for leaf index within the
// tree at the given size.
func (t *Tree) InclusionProof(index, size uint64) ([]Hash, error) {
	if size > t.Size() {
		return nil, ErrSizeOutOfRange
	}
	if index >= size {
		return nil, ErrIndexOutOfRange
	}
	return t.path(index, 0, size), nil
}

// path implements PATH(m, D[begin:begin+size]).
func (t *Tree) path(m, begin, size uint64) []Hash {
	if size <= 1 {
		return nil
	}
	k := largestPowerOfTwoBelow(size)
	if m < k {
		return append(t.path(m, begin, k), t.rootRange(begin+k, size-k))
	}
	return append(t.path(m-k, begin+k, size-k), t.rootRange(begin, k))
}

// ConsistencyProof returns the RFC 6962 consistency proof between the tree at
// size1 and the tree at size2 (size1 <= size2).
func (t *Tree) ConsistencyProof(size1, size2 uint64) ([]Hash, error) {
	if size2 > t.Size() {
		return nil, ErrSizeOutOfRange
	}
	if size1 > size2 {
		return nil, ErrBadProofSizes
	}
	if size1 == size2 || size1 == 0 {
		return nil, nil
	}
	return t.subProof(size1, 0, size2, true), nil
}

// subProof implements SUBPROOF(m, D[begin:begin+size], complete).
func (t *Tree) subProof(m, begin, size uint64, complete bool) []Hash {
	if m == size {
		if complete {
			return nil
		}
		return []Hash{t.rootRange(begin, size)}
	}
	k := largestPowerOfTwoBelow(size)
	if m <= k {
		return append(t.subProof(m, begin, k, complete), t.rootRange(begin+k, size-k))
	}
	return append(t.subProof(m-k, begin+k, size-k, false), t.rootRange(begin, k))
}

// VerifyInclusion checks an RFC 6962 inclusion proof: that leafHash is the
// leaf at index in the tree of the given size with the given root.
func VerifyInclusion(leafHash Hash, index, size uint64, proof []Hash, root Hash) bool {
	if index >= size {
		return false
	}
	fn, sn := index, size-1
	r := leafHash
	for _, p := range proof {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			r = NodeHash(p, r)
			if fn&1 == 0 {
				for fn&1 == 0 && fn != 0 {
					fn >>= 1
					sn >>= 1
				}
				if fn == 0 {
					// consumed the whole path on this side
					sn = 0
					continue
				}
			}
		} else {
			r = NodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && r == root
}

// VerifyConsistency checks an RFC 6962 consistency proof between root1 at
// size1 and root2 at size2.
func VerifyConsistency(size1, size2 uint64, root1, root2 Hash, proof []Hash) bool {
	switch {
	case size1 > size2:
		return false
	case size1 == size2:
		return len(proof) == 0 && root1 == root2
	case size1 == 0:
		return len(proof) == 0
	}
	if len(proof) == 0 {
		return false
	}
	fn, sn := size1-1, size2-1
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	var fr, cr Hash
	rest := proof
	if fn == 0 {
		// size1 is a power of two: old root is implicit first element.
		fr, cr = root1, root1
	} else {
		fr, cr = proof[0], proof[0]
		rest = proof[1:]
	}
	for _, p := range rest {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			fr = NodeHash(p, fr)
			cr = NodeHash(p, cr)
			if fn&1 == 0 {
				for fn&1 == 0 && fn != 0 {
					fn >>= 1
					sn >>= 1
				}
				if fn == 0 {
					sn = 0
					continue
				}
			}
		} else {
			cr = NodeHash(cr, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && fr == root1 && cr == root2
}

// largestPowerOfTwoBelow returns the largest power of two strictly less
// than n (n must be >= 2).
func largestPowerOfTwoBelow(n uint64) uint64 {
	if n < 2 {
		panic(fmt.Sprintf("merkle: largestPowerOfTwoBelow(%d)", n))
	}
	k := uint64(1)
	for k<<1 < n {
		k <<= 1
	}
	return k
}
