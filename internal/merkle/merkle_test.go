package merkle

import (
	"fmt"
	"testing"
	"testing/quick"
)

// refMTH is an independent reference implementation of RFC 6962 MTH used to
// cross-check the incremental tree.
func refMTH(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return EmptyRoot()
	case 1:
		return leaves[0]
	}
	k := 1
	for k*2 < len(leaves) {
		k *= 2
	}
	return NodeHash(refMTH(leaves[:k]), refMTH(leaves[k:]))
}

func buildTree(n int) (*Tree, []Hash) {
	t := &Tree{}
	leaves := make([]Hash, n)
	for i := 0; i < n; i++ {
		lh := LeafHash([]byte(fmt.Sprintf("leaf-%d", i)))
		leaves[i] = lh
		t.AppendLeafHash(lh)
	}
	return t, leaves
}

func TestEmptyTree(t *testing.T) {
	tr := &Tree{}
	if tr.Size() != 0 {
		t.Fatal("empty tree size")
	}
	if tr.Root() != EmptyRoot() {
		t.Fatal("empty root mismatch")
	}
	r, err := tr.RootAt(0)
	if err != nil || r != EmptyRoot() {
		t.Fatal("RootAt(0)")
	}
}

func TestKnownRFC6962Vectors(t *testing.T) {
	// RFC 6962 test vector: the empty tree root is the SHA-256 of the empty
	// string.
	const wantEmpty = "e3b0c44298fc1c14"
	if got := EmptyRoot().String(); got != wantEmpty {
		t.Fatalf("empty root = %s, want %s", got, wantEmpty)
	}
	// Leaf hash of empty input, per RFC 6962 (H(0x00)).
	const wantLeaf = "6e340b9cffb37a98"
	if got := LeafHash(nil).String(); got != wantLeaf {
		t.Fatalf("leaf hash = %s, want %s", got, wantLeaf)
	}
}

func TestRootMatchesReference(t *testing.T) {
	for n := 0; n <= 130; n++ {
		tr, leaves := buildTree(n)
		if got, want := tr.Root(), refMTH(leaves); got != want {
			t.Fatalf("n=%d: incremental root %s != reference %s", n, got, want)
		}
	}
}

func TestRootAtMatchesReference(t *testing.T) {
	tr, leaves := buildTree(100)
	for size := 0; size <= 100; size++ {
		got, err := tr.RootAt(uint64(size))
		if err != nil {
			t.Fatal(err)
		}
		if want := refMTH(leaves[:size]); got != want {
			t.Fatalf("RootAt(%d) mismatch", size)
		}
	}
	if _, err := tr.RootAt(101); err != ErrSizeOutOfRange {
		t.Fatal("RootAt beyond size should fail")
	}
}

func TestInclusionProofsAllSizes(t *testing.T) {
	const maxN = 70
	tr, leaves := buildTree(maxN)
	for size := uint64(1); size <= maxN; size++ {
		root, _ := tr.RootAt(size)
		for idx := uint64(0); idx < size; idx++ {
			proof, err := tr.InclusionProof(idx, size)
			if err != nil {
				t.Fatal(err)
			}
			if !VerifyInclusion(leaves[idx], idx, size, proof, root) {
				t.Fatalf("inclusion proof failed idx=%d size=%d", idx, size)
			}
			// Wrong leaf must fail.
			if VerifyInclusion(LeafHash([]byte("evil")), idx, size, proof, root) {
				t.Fatalf("forged leaf verified idx=%d size=%d", idx, size)
			}
		}
	}
}

func TestInclusionProofErrors(t *testing.T) {
	tr, _ := buildTree(10)
	if _, err := tr.InclusionProof(10, 10); err != ErrIndexOutOfRange {
		t.Fatal("index out of range not rejected")
	}
	if _, err := tr.InclusionProof(0, 11); err != ErrSizeOutOfRange {
		t.Fatal("size out of range not rejected")
	}
}

func TestInclusionProofCorruption(t *testing.T) {
	tr, leaves := buildTree(37)
	root := tr.Root()
	proof, err := tr.InclusionProof(17, 37)
	if err != nil {
		t.Fatal(err)
	}
	for i := range proof {
		bad := append([]Hash(nil), proof...)
		bad[i][0] ^= 0xFF
		if VerifyInclusion(leaves[17], 17, 37, bad, root) {
			t.Fatalf("corrupted proof element %d verified", i)
		}
	}
	// Truncated and extended proofs must fail.
	if VerifyInclusion(leaves[17], 17, 37, proof[:len(proof)-1], root) {
		t.Fatal("truncated proof verified")
	}
	if VerifyInclusion(leaves[17], 17, 37, append(append([]Hash(nil), proof...), Hash{}), root) {
		t.Fatal("extended proof verified")
	}
}

func TestConsistencyProofsAllSizePairs(t *testing.T) {
	const maxN = 40
	tr, _ := buildTree(maxN)
	roots := make([]Hash, maxN+1)
	for i := 0; i <= maxN; i++ {
		roots[i], _ = tr.RootAt(uint64(i))
	}
	for s1 := uint64(0); s1 <= maxN; s1++ {
		for s2 := s1; s2 <= maxN; s2++ {
			proof, err := tr.ConsistencyProof(s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			if !VerifyConsistency(s1, s2, roots[s1], roots[s2], proof) {
				t.Fatalf("consistency proof failed %d -> %d", s1, s2)
			}
		}
	}
}

func TestConsistencyRejectsForgedRoot(t *testing.T) {
	tr, _ := buildTree(33)
	r20, _ := tr.RootAt(20)
	r33, _ := tr.RootAt(33)
	proof, _ := tr.ConsistencyProof(20, 33)
	var evil Hash
	evil[0] = 1
	if VerifyConsistency(20, 33, evil, r33, proof) {
		t.Fatal("forged old root verified")
	}
	if VerifyConsistency(20, 33, r20, evil, proof) {
		t.Fatal("forged new root verified")
	}
	if VerifyConsistency(33, 20, r33, r20, proof) {
		t.Fatal("inverted sizes verified")
	}
}

func TestConsistencyProofErrors(t *testing.T) {
	tr, _ := buildTree(5)
	if _, err := tr.ConsistencyProof(3, 6); err != ErrSizeOutOfRange {
		t.Fatal("size beyond tree not rejected")
	}
	if _, err := tr.ConsistencyProof(4, 3); err != ErrBadProofSizes {
		t.Fatal("size1 > size2 not rejected")
	}
}

func TestLeafHashAt(t *testing.T) {
	tr, leaves := buildTree(5)
	h, err := tr.LeafHashAt(3)
	if err != nil || h != leaves[3] {
		t.Fatal("LeafHashAt mismatch")
	}
	if _, err := tr.LeafHashAt(5); err != ErrIndexOutOfRange {
		t.Fatal("out-of-range LeafHashAt not rejected")
	}
}

func TestAppendDataReturnsSequentialIndexes(t *testing.T) {
	tr := &Tree{}
	for i := 0; i < 10; i++ {
		if idx := tr.AppendData([]byte{byte(i)}); idx != uint64(i) {
			t.Fatalf("AppendData returned %d, want %d", idx, i)
		}
	}
}

func TestQuickInclusionRoundTrip(t *testing.T) {
	f := func(seed uint16, idxSeed uint16) bool {
		n := int(seed)%200 + 1
		tr, leaves := buildTree(n)
		idx := uint64(idxSeed) % uint64(n)
		proof, err := tr.InclusionProof(idx, uint64(n))
		if err != nil {
			return false
		}
		return VerifyInclusion(leaves[idx], idx, uint64(n), proof, tr.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickConsistencyRoundTrip(t *testing.T) {
	f := func(seed uint16, aSeed uint16) bool {
		n := int(seed)%200 + 1
		tr, _ := buildTree(n)
		s1 := uint64(aSeed) % uint64(n+1)
		r1, _ := tr.RootAt(s1)
		proof, err := tr.ConsistencyProof(s1, uint64(n))
		if err != nil {
			return false
		}
		return VerifyConsistency(s1, uint64(n), r1, tr.Root(), proof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	tr := &Tree{}
	var buf [8]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf[0], buf[1] = byte(i), byte(i>>8)
		tr.AppendData(buf[:])
	}
}

func BenchmarkInclusionProof(b *testing.B) {
	tr, _ := buildTree(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.InclusionProof(uint64(i)%4096, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
