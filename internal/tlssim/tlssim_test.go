package tlssim

import (
	"errors"
	"net"
	"testing"

	"stalecert/internal/crl"
	"stalecert/internal/revcheck"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func testCert(t *testing.T, names []string, nb, na int) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(1, 1, 42, names, simtime.Day(nb), simtime.Day(na))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// handshake runs server and client over a real TCP connection.
func handshake(t *testing.T, srv ServerConfig, cli ClientConfig) (*ConnInfo, error, string, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type srvResult struct {
		name string
		err  error
	}
	srvCh := make(chan srvResult, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvCh <- srvResult{err: err}
			return
		}
		defer conn.Close()
		name, err := Serve(conn, srv)
		srvCh <- srvResult{name: name, err: err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	info, cliErr := Dial(conn, cli)
	sr := <-srvCh
	return info, cliErr, sr.name, sr.err
}

func TestHandshakeSuccess(t *testing.T) {
	cert := testCert(t, []string{"example.com", "*.example.com"}, 0, 400)
	srv := ServerConfig{Cert: cert, Secret: KeySecret(cert.Key), Echo: []byte("hello")}
	cli := ClientConfig{ServerName: "www.example.com", Now: 100}
	info, err, name, srvErr := handshake(t, srv, cli)
	if err != nil || srvErr != nil {
		t.Fatalf("handshake: client=%v server=%v", err, srvErr)
	}
	if string(info.AppData) != "hello" {
		t.Fatalf("app data = %q", info.AppData)
	}
	if name != "www.example.com" {
		t.Fatalf("SNI seen by server = %q", name)
	}
	if info.Cert.Fingerprint() != cert.Fingerprint() {
		t.Fatal("cert drifted over the wire")
	}
}

func TestHandshakeNameMismatch(t *testing.T) {
	cert := testCert(t, []string{"other.com"}, 0, 400)
	srv := ServerConfig{Cert: cert, Secret: KeySecret(cert.Key)}
	_, err, _, _ := handshake(t, srv, ClientConfig{ServerName: "victim.com", Now: 100})
	if !errors.Is(err, ErrNameMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandshakeExpired(t *testing.T) {
	cert := testCert(t, []string{"example.com"}, 0, 50)
	srv := ServerConfig{Cert: cert, Secret: KeySecret(cert.Key)}
	_, err, _, _ := handshake(t, srv, ClientConfig{ServerName: "example.com", Now: 100})
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandshakeUntrustedIssuer(t *testing.T) {
	cert := testCert(t, []string{"example.com"}, 0, 400)
	srv := ServerConfig{Cert: cert, Secret: KeySecret(cert.Key)}
	cli := ClientConfig{
		ServerName:     "example.com",
		Now:            100,
		TrustedIssuers: map[x509sim.IssuerID]bool{99: true},
	}
	_, err, _, _ := handshake(t, srv, cli)
	if !errors.Is(err, ErrUntrustedIssuer) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandshakeWrongKeyProof(t *testing.T) {
	cert := testCert(t, []string{"example.com"}, 0, 400)
	// Presenter does NOT hold the certificate's key.
	srv := ServerConfig{Cert: cert, Secret: KeySecret(999)}
	_, err, _, _ := handshake(t, srv, ClientConfig{ServerName: "example.com", Now: 100})
	if !errors.Is(err, ErrBadKeyProof) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandshakeRevocationPolicies(t *testing.T) {
	cert := testCert(t, []string{"example.com"}, 0, 400)
	authority := crl.NewAuthority("CA")
	authority.Revoke(cert.Issuer, cert.Serial, 50, crl.KeyCompromise)
	checker := &revcheck.CRLChecker{Authorities: map[x509sim.IssuerID]*crl.Authority{cert.Issuer: authority}}
	srv := ServerConfig{Cert: cert, Secret: KeySecret(cert.Key), Echo: []byte("x")}

	// Chrome never checks: revoked cert accepted.
	info, err, _, _ := handshake(t, srv, ClientConfig{
		ServerName: "example.com", Now: 100,
		Profile: revcheck.ProfileChrome, Checker: checker,
	})
	if err != nil {
		t.Fatalf("Chrome rejected: %v", err)
	}
	if info.RevocationDecision.Checked {
		t.Fatal("Chrome should not have checked")
	}

	// Firefox checks and rejects with working infrastructure.
	_, err, _, _ = handshake(t, srv, ClientConfig{
		ServerName: "example.com", Now: 100,
		Profile: revcheck.ProfileFirefox, Checker: checker,
	})
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("Firefox err = %v", err)
	}

	// Firefox soft-fails when the attacker blocks revocation traffic.
	info, err, _, _ = handshake(t, srv, ClientConfig{
		ServerName: "example.com", Now: 100,
		Profile: revcheck.ProfileFirefox, Checker: revcheck.Intercepted(checker),
	})
	if err != nil {
		t.Fatalf("Firefox under interception rejected: %v", err)
	}
	if info.RevocationDecision.Status != revcheck.StatusUnavailable {
		t.Fatalf("decision = %+v", info.RevocationDecision)
	}

	// Hard-fail rejects under interception.
	_, err, _, _ = handshake(t, srv, ClientConfig{
		ServerName: "example.com", Now: 100,
		Profile: revcheck.ProfileStrict, Checker: revcheck.Intercepted(checker),
	})
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("hard-fail err = %v", err)
	}
}

func TestHandshakeCheckingProfileWithoutChecker(t *testing.T) {
	cert := testCert(t, []string{"example.com"}, 0, 400)
	srv := ServerConfig{Cert: cert, Secret: KeySecret(cert.Key), Echo: []byte("x")}
	// Soft-fail profile with no checker configured: proceeds.
	_, err, _, _ := handshake(t, srv, ClientConfig{
		ServerName: "example.com", Now: 100, Profile: revcheck.ProfileSafari,
	})
	if err != nil {
		t.Fatalf("soft-fail without checker: %v", err)
	}
	// Hard-fail profile with no checker: rejects.
	_, err, _, _ = handshake(t, srv, ClientConfig{
		ServerName: "example.com", Now: 100, Profile: revcheck.ProfileStrict,
	})
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("hard-fail without checker: %v", err)
	}
}

func TestStaleCertImpersonationEndToEnd(t *testing.T) {
	// The paper's threat, end to end: a managed-TLS provider's certificate
	// for a departed customer still passes every browser check.
	cert := testCert(t, []string{"sni1.cloudflaressl.com", "leaver.com", "*.leaver.com"}, 0, 400)
	provider := ServerConfig{Cert: cert, Secret: KeySecret(cert.Key), Echo: []byte("intercepted!")}
	browser := ClientConfig{
		ServerName:     "www.leaver.com",
		Now:            300, // long after the customer left the provider
		TrustedIssuers: map[x509sim.IssuerID]bool{cert.Issuer: true},
		Profile:        revcheck.ProfileChrome,
	}
	info, err, _, _ := handshake(t, provider, browser)
	if err != nil {
		t.Fatalf("impersonation should succeed (that's the finding): %v", err)
	}
	if string(info.AppData) != "intercepted!" {
		t.Fatal("no application data")
	}
}

func TestKeySecretDeterministicAndDistinct(t *testing.T) {
	if KeySecret(1) != KeySecret(1) {
		t.Fatal("not deterministic")
	}
	if KeySecret(1) == KeySecret(2) {
		t.Fatal("collision")
	}
}
