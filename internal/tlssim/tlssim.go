// Package tlssim is a minimal TLS-flavoured handshake over net.Conn, built
// on the reproduction's certificate model: the client names a server, the
// server presents a certificate and proves possession of its key, and the
// client runs the full verification stack — name matching, validity window,
// issuer trust, and a revocation policy from internal/revcheck.
//
// Its purpose is to make the paper's threat concrete: a third party holding
// a stale certificate's key passes every check a browser performs and
// impersonates the domain (examples/interception drives this end to end
// over TCP).
//
// Key possession is simulation-grade: each x509sim.KeyID derives a secret,
// and the handshake proves knowledge of it via an HMAC over the client
// nonce. Who legitimately *holds* a key is the world simulator's ground
// truth; "compromise" means that secret reaching another party.
package tlssim

import (
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"stalecert/internal/crl"
	"stalecert/internal/revcheck"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// KeySecret derives the possession secret for a key. In production this is
// the private key; here it is derivable so simulations are reproducible —
// the *model* restricts who uses it.
func KeySecret(id x509sim.KeyID) [32]byte {
	var buf [16]byte
	copy(buf[:], "tls-key-secret")
	binary.BigEndian.PutUint64(buf[8:], uint64(id))
	return sha256.Sum256(buf[:])
}

// Message types.
const (
	msgClientHello = 1
	msgServerHello = 2
	msgFinished    = 3
	msgAppData     = 4
	msgAlert       = 5
)

// Handshake and verification errors.
var (
	ErrNameMismatch    = errors.New("tlssim: certificate does not cover server name")
	ErrExpired         = errors.New("tlssim: certificate outside validity period")
	ErrUntrustedIssuer = errors.New("tlssim: untrusted issuer")
	ErrRevoked         = errors.New("tlssim: certificate revoked")
	ErrBadKeyProof     = errors.New("tlssim: key-possession proof invalid")
	ErrProtocol        = errors.New("tlssim: protocol violation")
	ErrWrongUsage      = errors.New("tlssim: certificate not authorized for server authentication")
)

// writeMsg frames a message: type(1) | length(4) | payload.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, 5)
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads one framed message (1 MiB cap).
func readMsg(r io.Reader) (byte, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > 1<<20 {
		return 0, nil, fmt.Errorf("%w: oversized message", ErrProtocol)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ServerConfig configures the presenting side.
type ServerConfig struct {
	Cert *x509sim.Certificate
	// Secret is the possession secret for Cert.Key (KeySecret of whoever
	// holds the key).
	Secret [32]byte
	// Echo is the application payload returned after the handshake.
	Echo []byte
}

// Serve runs one handshake + application exchange on conn. It returns the
// server name the client asked for.
func Serve(conn net.Conn, cfg ServerConfig) (string, error) {
	typ, payload, err := readMsg(conn)
	if err != nil {
		return "", err
	}
	if typ != msgClientHello || len(payload) < 33 {
		return "", ErrProtocol
	}
	var nonce [32]byte
	copy(nonce[:], payload[:32])
	serverName := string(payload[32:])

	certBytes := cfg.Cert.Marshal()
	mac := keyProof(cfg.Secret, nonce, cfg.Cert)
	hello := make([]byte, 0, 32+len(certBytes))
	hello = append(hello, mac[:]...)
	hello = append(hello, certBytes...)
	if err := writeMsg(conn, msgServerHello, hello); err != nil {
		return "", err
	}

	typ, _, err = readMsg(conn)
	if err != nil {
		return "", err
	}
	switch typ {
	case msgFinished:
		if err := writeMsg(conn, msgAppData, cfg.Echo); err != nil {
			return "", err
		}
		return serverName, nil
	case msgAlert:
		return serverName, fmt.Errorf("%w: client alert", ErrProtocol)
	default:
		return "", ErrProtocol
	}
}

// keyProof MACs the client nonce and certificate fingerprint with the key
// secret, binding the presented certificate to key possession.
func keyProof(secret [32]byte, nonce [32]byte, cert *x509sim.Certificate) [32]byte {
	m := hmac.New(sha256.New, secret[:])
	m.Write(nonce[:])
	fp := cert.Fingerprint()
	m.Write(fp[:])
	var out [32]byte
	m.Sum(out[:0])
	return out
}

// ClientConfig configures the verifying side.
type ClientConfig struct {
	ServerName string
	Now        simtime.Day
	// Context bounds the revocation lookup the handshake performs; nil means
	// context.Background().
	Context context.Context
	// TrustedIssuers is the client's root store; nil trusts every issuer.
	TrustedIssuers map[x509sim.IssuerID]bool
	// Profile and Checker drive revocation checking; the zero Profile never
	// checks (Chrome-like).
	Profile revcheck.Profile
	Checker revcheck.Checker
	// MustStaple marks certificates carrying the must-staple extension.
	MustStaple func(*x509sim.Certificate) bool
}

// ConnInfo reports a completed client handshake.
type ConnInfo struct {
	Cert    *x509sim.Certificate
	AppData []byte
	// RevocationDecision is the revocation evaluation that was applied.
	RevocationDecision revcheck.Decision
}

// Dial runs the client side of the handshake on conn and verifies the
// presented certificate. On verification failure an alert is sent and a
// typed error returned.
func Dial(conn net.Conn, cfg ClientConfig) (*ConnInfo, error) {
	var nonce [32]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	hello := append(nonce[:], cfg.ServerName...)
	if err := writeMsg(conn, msgClientHello, hello); err != nil {
		return nil, err
	}

	typ, payload, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	if typ != msgServerHello || len(payload) < 33 {
		return nil, ErrProtocol
	}
	var mac [32]byte
	copy(mac[:], payload[:32])
	cert, err := x509sim.Unmarshal(payload[32:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}

	info := &ConnInfo{Cert: cert}
	if err := verify(cert, mac, nonce, cfg, info); err != nil {
		_ = writeMsg(conn, msgAlert, []byte(err.Error()))
		return info, err
	}

	if err := writeMsg(conn, msgFinished, nil); err != nil {
		return nil, err
	}
	typ, payload, err = readMsg(conn)
	if err != nil {
		return nil, err
	}
	if typ != msgAppData {
		return nil, ErrProtocol
	}
	info.AppData = payload
	return info, nil
}

// verify runs the client's certificate checks in browser order.
func verify(cert *x509sim.Certificate, mac, nonce [32]byte, cfg ClientConfig, info *ConnInfo) error {
	if !cert.Covers(cfg.ServerName) {
		return fmt.Errorf("%w: %q not in %v", ErrNameMismatch, cfg.ServerName, cert.Names)
	}
	if !cert.ValidOn(cfg.Now) {
		return fmt.Errorf("%w: %s not in %s..%s", ErrExpired, cfg.Now, cert.NotBefore, cert.NotAfter)
	}
	if cert.Usage&x509sim.UsageServerAuth == 0 {
		return ErrWrongUsage
	}
	if cfg.TrustedIssuers != nil && !cfg.TrustedIssuers[cert.Issuer] {
		return fmt.Errorf("%w: issuer %d", ErrUntrustedIssuer, cert.Issuer)
	}
	// Key-possession proof: the presenter must know the key secret. This is
	// the check stale certificates PASS — the third party has the key.
	want := keyProof(KeySecret(cert.Key), nonce, cert)
	if !hmac.Equal(want[:], mac[:]) {
		return ErrBadKeyProof
	}
	// Revocation per the client's profile.
	if cfg.Checker != nil || cfg.Profile.ChecksRevocation {
		checker := cfg.Checker
		if checker == nil {
			// Checking profile with no configured checker: status is
			// unavailable, so the profile's fail mode decides.
			checker = revcheck.CheckerFunc(func(context.Context, *x509sim.Certificate, simtime.Day) (revcheck.Status, crl.Reason, error) {
				return revcheck.StatusUnavailable, 0, errors.New("tlssim: no revocation checker configured")
			})
		}
		ctx := cfg.Context
		if ctx == nil {
			ctx = context.Background()
		}
		ms := cfg.MustStaple != nil && cfg.MustStaple(cert)
		d := cfg.Profile.Evaluate(ctx, cert, cfg.Now, checker, ms)
		info.RevocationDecision = d
		if !d.Accepted {
			return ErrRevoked
		}
	}
	return nil
}
