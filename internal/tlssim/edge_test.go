package tlssim

import (
	"errors"
	"net"
	"testing"

	"stalecert/internal/x509sim"
)

// pipePair returns connected in-memory conns.
func pipePair() (net.Conn, net.Conn) {
	return net.Pipe()
}

func TestServeRejectsGarbage(t *testing.T) {
	cert := mustCert(t)
	client, server := pipePair()
	done := make(chan error, 1)
	go func() {
		_, err := Serve(server, ServerConfig{Cert: cert, Secret: KeySecret(42)})
		done <- err
	}()
	// Send a non-hello message type.
	if err := writeMsg(client, msgAppData, []byte("nonsense-payload-0123456789012345678901")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrProtocol) {
		t.Fatalf("serve err = %v", err)
	}
	client.Close()
	server.Close()
}

func mustCert(t *testing.T) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(1, 1, 42, []string{"example.com"}, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestServeReportsClientAlert(t *testing.T) {
	cert := mustCert(t)
	client, server := pipePair()
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		_, err := Serve(server, ServerConfig{Cert: cert, Secret: KeySecret(999)}) // wrong key
		done <- err
	}()
	_, cliErr := Dial(client, ClientConfig{ServerName: "example.com", Now: 100})
	if !errors.Is(cliErr, ErrBadKeyProof) {
		t.Fatalf("client err = %v", cliErr)
	}
	if srvErr := <-done; !errors.Is(srvErr, ErrProtocol) {
		t.Fatalf("server should observe the alert, got %v", srvErr)
	}
}

func TestReadMsgOversized(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	go func() {
		// type byte + 4-byte length claiming 2 MiB
		_, _ = client.Write([]byte{msgClientHello, 0x00, 0x20, 0x00, 0x00})
	}()
	if _, _, err := readMsg(server); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized frame err = %v", err)
	}
}

func TestWrongUsageRejected(t *testing.T) {
	cert := mustCert(t)
	cert.Usage = x509sim.UsageCodeSigning // not a server-auth cert
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	go func() {
		_, _ = Serve(server, ServerConfig{Cert: cert, Secret: KeySecret(cert.Key)})
	}()
	_, err := Dial(client, ClientConfig{ServerName: "example.com", Now: 100})
	if !errors.Is(err, ErrWrongUsage) {
		t.Fatalf("err = %v", err)
	}
}

func TestDialRejectsTruncatedServerHello(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	go func() {
		// Read the hello, reply with a malformed short server hello.
		_, _, _ = readMsg(server)
		_ = writeMsg(server, msgServerHello, []byte("short"))
	}()
	if _, err := Dial(client, ClientConfig{ServerName: "example.com", Now: 1}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}

func TestDialRejectsUndecodableCert(t *testing.T) {
	client, server := pipePair()
	defer client.Close()
	defer server.Close()
	go func() {
		_, _, _ = readMsg(server)
		payload := make([]byte, 64) // 32-byte MAC + garbage cert
		_ = writeMsg(server, msgServerHello, payload)
	}()
	if _, err := Dial(client, ClientConfig{ServerName: "example.com", Now: 1}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
}
