package worldsim

import (
	"testing"

	"stalecert/internal/ca"
	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Behavioural tests for the dynamics DESIGN.md calls load-bearing.

func TestUnattendedAutomationExtendsPastLapse(t *testing.T) {
	// §7.1: automated issuance keeps renewing after the owner walks away,
	// until the validation-reuse window runs out — producing certificates
	// issued strictly after the domain lapsed.
	s := Quick()
	s.Start = simtime.MustParse("2019-01-01")
	s.End = simtime.MustParse("2021-12-31")
	s.BaseDailyRegistrations = 3
	s.DomainRenewProb = 0 // every domain lapses after one cycle
	s.ReRegistrationProb = 0
	s.GoDaddyBreach = false
	s.WHOISWindow = simtime.Span{}
	s.ADNSWindow = simtime.Span{}
	s.CRLWindow = simtime.Span{}
	w := NewWorld(s)
	w.Run()

	certs, _ := w.Logs.Dedup()
	postLapse := 0
	for _, c := range certs {
		prof, ok := w.Dir.Profile(c.Issuer)
		if !ok || !prof.Automated || prof.ManagedTLS {
			continue
		}
		// Find the e2LD and its (single-cycle) registration window.
		for _, name := range c.Names {
			e2, err := w.PSL.ETLDPlusOne(name)
			if err != nil {
				continue
			}
			if hist := w.Registry.History(e2); len(hist) == 1 {
				if c.NotBefore > hist[0].Expires {
					postLapse++
				}
			}
			break
		}
	}
	if postLapse == 0 {
		t.Fatal("no automated certificates issued after domain lapse — §7.1 dynamic missing")
	}
	// But the chains must die once revalidation fails: nothing should be
	// issued more than ReuseWindow past a lapse.
	for _, c := range certs {
		prof, ok := w.Dir.Profile(c.Issuer)
		if !ok || !prof.Automated || prof.ManagedTLS {
			continue
		}
		for _, name := range c.Names {
			e2, err := w.PSL.ETLDPlusOne(name)
			if err != nil {
				continue
			}
			if hist := w.Registry.History(e2); len(hist) == 1 {
				if over := int(c.NotBefore - hist[0].Expires); over > ca.ReuseWindow+60 {
					t.Fatalf("cert issued %d days past lapse of %s — automation immortal", over, e2)
				}
			}
			break
		}
	}
}

func TestHostingMixCoversAllModes(t *testing.T) {
	s := Quick()
	s.Start = simtime.MustParse("2019-01-01")
	s.End = simtime.MustParse("2020-12-31")
	s.BaseDailyRegistrations = 4
	s.WHOISWindow = simtime.Span{}
	s.ADNSWindow = simtime.Span{}
	s.CRLWindow = simtime.Span{}
	s.GoDaddyBreach = false
	w := NewWorld(s)
	w.Run()

	certs, _ := w.Logs.Dedup()
	byIssuer := map[x509sim.IssuerID]int{}
	for _, c := range certs {
		byIssuer[c.Issuer]++
	}
	// The era's big CAs must all appear: LE (self automated), cPanel
	// (platform), Cloudflare (CDN per-domain era), and at least one manual
	// commercial CA.
	for _, id := range []x509sim.IssuerID{ca.IssuerLetsEncryptX3, ca.IssuerCPanel, ca.IssuerCloudflareECC} {
		if byIssuer[id] == 0 {
			t.Errorf("issuer %v absent from corpus", w.Dir.Name(id))
		}
	}
	manual := byIssuer[ca.IssuerGoDaddy] + byIssuer[ca.IssuerSectigo] + byIssuer[ca.IssuerDigiCert] +
		byIssuer[ca.IssuerGlobalSign] + byIssuer[ca.IssuerEntrust]
	if manual == 0 {
		t.Error("no manual-CA certificates issued")
	}
}

func TestCruiseLinerEraIssuerSwitch(t *testing.T) {
	s := Quick()
	s.Start = simtime.MustParse("2017-06-01")
	s.End = simtime.MustParse("2020-12-31")
	s.BaseDailyRegistrations = 4
	s.CDNBase, s.CDNPeak = 0.4, 0.4 // lots of CDN traffic for signal
	s.WHOISWindow = simtime.Span{}
	s.ADNSWindow = simtime.Span{}
	s.CRLWindow = simtime.Span{}
	s.GoDaddyBreach = false
	w := NewWorld(s)
	w.Run()

	certs, _ := w.Logs.Dedup()
	var comodoLast, cloudflareFirst simtime.Day = simtime.NoDay, simtime.Forever
	comodoMulti := 0
	for _, c := range certs {
		switch c.Issuer {
		case ca.IssuerComodoDV:
			if c.NotBefore > comodoLast {
				comodoLast = c.NotBefore
			}
			if len(c.Names) > 5 {
				comodoMulti++
			}
		case ca.IssuerCloudflareECC:
			if c.NotBefore < cloudflareFirst {
				cloudflareFirst = c.NotBefore
			}
		}
	}
	if comodoMulti == 0 {
		t.Fatal("no multi-customer cruise-liner certificates issued")
	}
	if cloudflareFirst < CloudflarePerDomainFrom {
		t.Fatalf("Cloudflare CA issued before the per-domain era: %s", cloudflareFirst)
	}
	if comodoLast == simtime.NoDay {
		t.Fatal("no COMODO certificates at all")
	}
}

func TestWHOISWindowBoundsObservations(t *testing.T) {
	s := Quick()
	s.Start = simtime.MustParse("2018-01-01")
	s.End = simtime.MustParse("2020-12-31")
	s.BaseDailyRegistrations = 2
	// WHOIS collection only during 2019.
	s.WHOISWindow = simtime.Span{
		Start: simtime.MustParse("2019-01-01"),
		End:   simtime.MustParse("2020-01-01"),
	}
	s.ADNSWindow = simtime.Span{}
	s.CRLWindow = simtime.Span{}
	s.GoDaddyBreach = false
	w := NewWorld(s)
	w.Run()

	if w.Whois.Domains() == 0 {
		t.Fatal("no WHOIS observations in window")
	}
	// Every observed creation date must be visible during the window: either
	// pre-window (still registered at window start) or inside it; never
	// after the window closes.
	for _, d := range w.AllDomains() {
		for _, created := range w.Whois.CreationDates(d) {
			if created >= s.WHOISWindow.End {
				t.Fatalf("domain %s: creation %s observed after window end", d, created)
			}
		}
	}
}

func TestDisabledCollectionsStayEmpty(t *testing.T) {
	s := Quick()
	s.Start = simtime.MustParse("2020-01-01")
	s.End = simtime.MustParse("2020-06-30")
	s.WHOISWindow = simtime.Span{}
	s.ADNSWindow = simtime.Span{}
	s.CRLWindow = simtime.Span{}
	s.GoDaddyBreach = false
	w := NewWorld(s)
	w.Run()
	if w.Whois.Rows() != 0 {
		t.Error("WHOIS collected outside window")
	}
	if len(w.ADNS.Days()) != 0 {
		t.Error("aDNS scanned outside window")
	}
	if len(w.RevocationEntries()) != 0 {
		t.Error("CRLs collected outside window")
	}
	if len(w.Ledger.Rows()) != 0 {
		t.Error("ledger recorded outside window")
	}
}

func TestExportZoneRoundTrips(t *testing.T) {
	s := Quick()
	s.Start = simtime.MustParse("2020-01-01")
	s.End = simtime.MustParse("2020-12-31")
	s.BaseDailyRegistrations = 2
	s.WHOISWindow = simtime.Span{}
	s.ADNSWindow = simtime.Span{}
	s.CRLWindow = simtime.Span{}
	s.GoDaddyBreach = false
	w := NewWorld(s)
	w.Run()

	text, err := w.ExportZone("com")
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty zone export")
	}
	reparsed, err := dnssim.ParseZoneFile("com", text)
	if err != nil {
		t.Fatalf("exported zone does not reparse: %v", err)
	}
	if reparsed.Len() == 0 {
		t.Fatal("reparsed zone empty")
	}
	if _, err := w.ExportZone("org"); err == nil {
		t.Fatal("unknown TLD accepted")
	}
}
