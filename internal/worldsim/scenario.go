// Package worldsim is the synthetic internet: a seeded discrete-event
// simulation of domain registrations, HTTPS adoption, CA issuance, CDN
// enrolment and departure, key compromise, and revocation, driving every
// substrate (registry, WHOIS, DNS, CT, CRL) so the paper's measurement
// pipelines can run end to end at laptop scale.
//
// Calibration follows the paper's observed dynamics: Let's Encrypt's
// introduction multiplies HTTPS adoption; Cloudflare packs customers into
// COMODO cruise-liner certificates until mid-2019 and then switches to its
// own per-domain CA; GoDaddy's November 2021 breach mass-revokes for key
// compromise; Let's Encrypt only begins publishing keyCompromise reasons in
// July 2022; browser policy caps lifetimes at 825 days from 2018 and 398
// days from September 2020.
package worldsim

import (
	"math"

	"stalecert/internal/simtime"
)

// Landmark days used across the scenario.
var (
	// DefaultStart matches the paper's CT range start.
	DefaultStart = simtime.MustParse("2013-03-01")
	// DefaultEnd matches the paper's CT collection end.
	DefaultEnd = simtime.MustParse("2023-05-12")
	// LetsEncryptLaunch is when automated free issuance arrives.
	LetsEncryptLaunch = simtime.MustParse("2015-12-01")
	// CloudflarePerDomainFrom is when cruise-liners give way to per-domain
	// certificates (mid-2019, §5.2).
	CloudflarePerDomainFrom = simtime.MustParse("2019-06-01")
	// GoDaddyBreachStart/End bound the November 2021 mass key-compromise
	// revocations (Figure 4).
	GoDaddyBreachStart = simtime.MustParse("2021-11-17")
	GoDaddyBreachEnd   = simtime.MustParse("2021-12-20")
	// WHOISWindow bounds the bulk WHOIS dataset (Table 3).
	WHOISWindowStart = simtime.MustParse("2016-01-01")
	WHOISWindowEnd   = simtime.MustParse("2021-07-08")
	// ADNSWindow bounds the daily active-DNS scans (Table 3).
	ADNSWindowStart = simtime.MustParse("2022-08-01")
	ADNSWindowEnd   = simtime.MustParse("2022-10-30")
	// CRLWindow bounds daily CRL collection (Table 3).
	CRLWindowStart = simtime.MustParse("2022-11-01")
	CRLWindowEnd   = simtime.MustParse("2023-05-05")
)

// Scenario parameterises a simulation run. The zero value is not useful;
// start from Default() and tweak.
type Scenario struct {
	Seed  int64
	Start simtime.Day
	End   simtime.Day

	// BaseDailyRegistrations is the expected new registrations per day at
	// Start; AnnualRegistrationGrowth compounds it per year.
	BaseDailyRegistrations   float64
	AnnualRegistrationGrowth float64

	// HTTPSBase is pre-Let's-Encrypt adoption probability for a new domain;
	// HTTPSPeak is the asymptote approached after automation arrives.
	HTTPSBase float64
	HTTPSPeak float64

	// CDNBase/CDNPeak bound the fraction of HTTPS domains choosing managed
	// TLS via the CDN (growing over time, §7.1); PlatformShare is the
	// cPanel-style hosting share.
	CDNBase       float64
	CDNPeak       float64
	PlatformShare float64

	// DomainRenewProb is the chance a registrant renews at expiry.
	DomainRenewProb float64
	// ReRegistrationProb is the chance a released domain is re-registered
	// by a new owner; DropCatchProb is the sub-probability that the
	// re-registration happens immediately at release (drop-catch services).
	ReRegistrationProb float64
	DropCatchProb      float64
	// ReRegistrationMaxDelay bounds the non-drop-catch re-registration
	// delay after release, in days.
	ReRegistrationMaxDelay int

	// CertManualRenewProb is the chance a manually-managed certificate is
	// renewed at expiry (automated CAs always renew while the domain is
	// held and validation reuse allows).
	CertManualRenewProb float64
	// RenewBeforeDays is the automation renewal window before expiry.
	RenewBeforeDays int

	// CompromiseProbLong/Short are per-certificate key-compromise
	// probabilities for long-lived (>180d) and short-lived certificates;
	// compromise is discovered CompromiseMeanDelay days (exponential,
	// capped at CompromiseMaxDelay) after issuance.
	CompromiseProbLong  float64
	CompromiseProbShort float64
	CompromiseMeanDelay float64
	CompromiseMaxDelay  int
	// OtherRevocationProb is the chance a certificate is revoked for a
	// non-compromise reason (superseded, cessation, ...) at a uniform point
	// of its life.
	OtherRevocationProb float64

	// GoDaddyBreach enables the November 2021 mass revocation; BreachShare
	// is the fraction of then-valid GoDaddy certificates revoked.
	GoDaddyBreach bool
	BreachShare   float64

	// CDNAnnualChurn is the fraction of CDN customers departing per year.
	CDNAnnualChurn float64

	// CruiseBoatSize caps customers per cruise-liner certificate.
	CruiseBoatSize int

	// Collection windows (zero spans disable a collection).
	WHOISWindow simtime.Span
	ADNSWindow  simtime.Span
	CRLWindow   simtime.Span
}

// Default returns the full-scale default scenario.
func Default() Scenario {
	return Scenario{
		Seed:                     1,
		Start:                    DefaultStart,
		End:                      DefaultEnd,
		BaseDailyRegistrations:   8,
		AnnualRegistrationGrowth: 1.13,
		HTTPSBase:                0.15,
		HTTPSPeak:                0.90,
		CDNBase:                  0.06,
		CDNPeak:                  0.32,
		PlatformShare:            0.12,
		DomainRenewProb:          0.65,
		ReRegistrationProb:       0.60,
		DropCatchProb:            0.45,
		ReRegistrationMaxDelay:   300,
		CertManualRenewProb:      0.80,
		RenewBeforeDays:          30,
		CompromiseProbLong:       0.003,
		CompromiseProbShort:      0.0006,
		CompromiseMeanDelay:      18,
		CompromiseMaxDelay:       600,
		OtherRevocationProb:      0.06,
		GoDaddyBreach:            true,
		BreachShare:              0.50,
		CDNAnnualChurn:           0.22,
		CruiseBoatSize:           30,
		WHOISWindow:              simtime.Span{Start: WHOISWindowStart, End: WHOISWindowEnd + 1},
		ADNSWindow:               simtime.Span{Start: ADNSWindowStart, End: ADNSWindowEnd + 1},
		CRLWindow:                simtime.Span{Start: CRLWindowStart, End: CRLWindowEnd + 1},
	}
}

// Quick returns a small scenario for tests and benchmarks: same dynamics,
// fewer domains.
func Quick() Scenario {
	s := Default()
	s.BaseDailyRegistrations = 1.2
	s.AnnualRegistrationGrowth = 1.10
	return s
}

// yearsSince returns fractional years between two days.
func yearsSince(from, to simtime.Day) float64 {
	return float64(to-from) / 365.25
}

// registrationRate is the expected new registrations on a day.
func (s Scenario) registrationRate(day simtime.Day) float64 {
	rate := s.BaseDailyRegistrations
	growth := s.AnnualRegistrationGrowth
	if growth <= 0 {
		growth = 1
	}
	return rate * math.Pow(growth, yearsSince(s.Start, day))
}

// httpsProb is the chance a domain registered on day deploys HTTPS.
func (s Scenario) httpsProb(day simtime.Day) float64 {
	if day < LetsEncryptLaunch {
		return s.HTTPSBase
	}
	// Logistic ramp reaching ~peak by 2020.
	t := yearsSince(LetsEncryptLaunch, day)
	frac := t / 4.0
	if frac > 1 {
		frac = 1
	}
	return s.HTTPSBase + (s.HTTPSPeak-s.HTTPSBase)*frac
}

// cdnProb is the chance an HTTPS domain uses the CDN at day.
func (s Scenario) cdnProb(day simtime.Day) float64 {
	t := yearsSince(s.Start, day) / 9.0
	if t > 1 {
		t = 1
	}
	if t < 0 {
		t = 0
	}
	return s.CDNBase + (s.CDNPeak-s.CDNBase)*t
}
