package worldsim

import (
	"container/heap"

	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// eventKind enumerates scheduled simulation events.
type eventKind uint8

const (
	evDomainExpiry eventKind = iota // registrant decides renew-or-lapse
	evReRegister                    // released domain re-registered by new owner
	evRenewAuto                     // automated certificate renewal attempt
	evRenewManual                   // manual certificate renewal decision
	evCDNDepart                     // customer migrates off the CDN
	evCDNRenew                      // CDN-managed certificate renewal sweep
	evCompromise                    // key compromise discovered and reported
	evOtherRevoke                   // non-compromise revocation
)

// event is one scheduled occurrence. seq breaks ties deterministically.
type event struct {
	day    simtime.Day
	seq    uint64
	kind   eventKind
	domain string
	cert   *x509sim.Certificate
}

// eventHeap is a min-heap on (day, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].day != h[j].day {
		return h[i].day < h[j].day
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// schedule enqueues an event.
func (w *World) schedule(day simtime.Day, kind eventKind, domain string, cert *x509sim.Certificate) {
	if day > w.S.End {
		return // beyond the simulation horizon
	}
	w.seq++
	heap.Push(&w.events, &event{day: day, seq: w.seq, kind: kind, domain: domain, cert: cert})
}

// popDue pops the next event due on or before day, nil when none.
func (w *World) popDue(day simtime.Day) *event {
	if len(w.events) == 0 || w.events[0].day > day {
		return nil
	}
	return heap.Pop(&w.events).(*event)
}
