package worldsim

import (
	"testing"
)

func TestFullScaleTiming(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	w := NewWorld(Default())
	w.Run()
	certs, stats := w.Logs.Dedup()
	t.Logf("domains=%d certs=%d rawCT=%d revocations=%d whoisDomains=%d rereg=%d adnsDays=%d departures=%d",
		w.DomainCount(), len(certs), stats.RawEntries, len(w.RevocationEntries()),
		w.Whois.Domains(), len(w.Whois.ReRegistrations()), len(w.ADNS.Days()), len(w.ADNS.Departures()))
}
