package worldsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"stalecert/internal/ca"
	"stalecert/internal/cdn"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnsname"
	"stalecert/internal/dnssim"
	"stalecert/internal/psl"
	"stalecert/internal/registry"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

// Hosting is how a domain serves HTTPS (§2.3's five methods, collapsed to
// the four the pipelines distinguish).
type Hosting uint8

// Hosting choices.
const (
	HostNone     Hosting = iota // no HTTPS
	HostSelf                    // method 1: self-managed certificate
	HostCDNNS                   // method 3 via NS delegation
	HostCDNCNAME                // method 3 via CNAME delegation
	HostPlatform                // methods 4/5: registrar / hosting platform
)

// String names the hosting mode.
func (h Hosting) String() string {
	switch h {
	case HostNone:
		return "none"
	case HostSelf:
		return "self"
	case HostCDNNS:
		return "cdn-ns"
	case HostCDNCNAME:
		return "cdn-cname"
	case HostPlatform:
		return "platform"
	}
	return "hosting?"
}

// domainState is the simulator's ground truth for one e2LD registration
// cycle.
type domainState struct {
	name       string
	registrant string
	account    string // CA account of the current operator
	hosting    Hosting
	issuer     x509sim.IssuerID // CA used for self/platform certs
	active     bool
	intendKeep bool // registrant intends to renew the domain
	generation int  // registration cycle count
}

// World is a running simulation. Construct with NewWorld, advance with Run
// (or Step for finer control), then hand the produced datasets to the
// detection pipelines.
type World struct {
	S   Scenario
	rng *rand.Rand

	Registry *registry.Registry
	DNS      *dnssim.Store
	Logs     *ctlog.Collection
	Dir      *ca.Directory
	CAs      map[x509sim.IssuerID]*ca.CA
	CDN      *cdn.Provider
	Whois    *whois.Archive
	Ledger   *crl.CoverageLedger
	PSL      *psl.List

	// ADNS is the compact daily scan record within the aDNS window.
	ADNS *ScanLog

	domains map[string]*domainState
	events  eventHeap
	seq     uint64

	nextKey         uint64
	nextName        int
	nextOwner       int
	today           simtime.Day
	crlFetched      bool
	crlOK           map[string]int // per-CA successful daily fetches
	registeredToday []string       // registrations performed this Step

	revocations map[x509sim.DedupKey]crl.Entry

	comZone *dnssim.Zone
	netZone *dnssim.Zone
}

// NewWorld wires a world from a scenario.
func NewWorld(s Scenario) *World {
	w := &World{
		S:           s,
		rng:         rand.New(rand.NewSource(s.Seed)),
		Registry:    registry.New("com", "net"),
		DNS:         dnssim.NewStore(),
		Dir:         ca.NewDirectory(),
		CAs:         make(map[x509sim.IssuerID]*ca.CA),
		Whois:       whois.NewArchive(),
		Ledger:      crl.NewCoverageLedger(),
		PSL:         psl.Default(),
		domains:     make(map[string]*domainState),
		crlOK:       make(map[string]int),
		revocations: make(map[x509sim.DedupKey]crl.Entry),
		ADNS:        NewScanLog(),
	}
	w.comZone = dnssim.NewZone("com")
	w.netZone = dnssim.NewZone("net")
	w.DNS.AddZone(w.comZone)
	w.DNS.AddZone(w.netZone)
	w.DNS.AddZone(dnssim.NewZone("cloudflare.com"))

	// Temporally sharded CT logs, like production operators run; submissions
	// route by expiry and the pipeline deduplicates across shards.
	firstYear, lastYear := s.Start.Year(), s.End.Year()+3
	w.Logs = ctlog.NewCollection(ctlog.ShardedLogs("nimbus", firstYear, lastYear, false)...)

	validator := ca.ValidatorFunc(w.validateControl)
	for _, p := range w.Dir.All() {
		w.CAs[p.ID] = ca.New(ca.Config{
			Profile:   p,
			Validator: validator,
			Logs:      w.Logs,
			NewKey:    w.mintKey,
		})
	}

	w.CDN = cdn.New(cdn.Config{
		Name:          "cloudflare",
		NameServers:   []string{"kiki.ns.cloudflare.com", "uma.ns.cloudflare.com"},
		EdgeSuffix:    "cdn.cloudflare.com",
		MarkerSuffix:  "cloudflaressl.com",
		BoatSize:      s.CruiseBoatSize,
		CruiseCA:      w.CAs[ca.IssuerComodoDV],
		PerDomainCA:   w.CAs[ca.IssuerCloudflareECC],
		PerDomainFrom: CloudflarePerDomainFrom,
		Store:         w.DNS,
		EdgeIPs:       []string{"104.16.0.1"},
	})
	return w
}

func (w *World) mintKey() x509sim.KeyID {
	w.nextKey++
	return x509sim.KeyID(w.nextKey)
}

// validateControl is the CAs' ground-truth DV check: the requesting account
// must currently operate the domain (registrant account, platform, or CDN
// while enrolled).
func (w *World) validateControl(domain, account string, _ simtime.Day) error {
	// The provider controls its own marker/edge namespace outright.
	if account == w.CDN.Account() && dnsname.IsSubdomain(domain, "cloudflaressl.com") {
		return nil
	}
	e2ld, err := w.PSL.ETLDPlusOne(domain)
	if err != nil {
		e2ld = domain
	}
	d, ok := w.domains[e2ld]
	if !ok || !d.active {
		return errors.New("domain not operated")
	}
	if account == d.account {
		return nil
	}
	if account == w.CDN.Account() {
		if c, ok := w.CDN.Customer(e2ld); ok && c.Active() {
			return nil
		}
	}
	return fmt.Errorf("account %q does not control %q", account, e2ld)
}

// Today returns the current simulation day.
func (w *World) Today() simtime.Day { return w.today }

// DomainCount returns how many e2LDs have ever existed.
func (w *World) DomainCount() int { return len(w.domains) }

// AllDomains returns every e2LD ever registered, sorted.
func (w *World) AllDomains() []string {
	out := make([]string, 0, len(w.domains))
	for d := range w.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// RevocationEntries returns the revocations gathered by CRL collection,
// sorted deterministically.
func (w *World) RevocationEntries() []crl.Entry {
	out := make([]crl.Entry, 0, len(w.revocations))
	for _, e := range w.revocations {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Issuer != out[j].Issuer {
			return out[i].Issuer < out[j].Issuer
		}
		return out[i].Serial < out[j].Serial
	})
	return out
}

// Run advances the world from Start to End.
func (w *World) Run() {
	for day := w.S.Start; day <= w.S.End; day++ {
		w.Step(day)
	}
}

// Step advances one day: lifecycle ticks, scheduled events, new
// registrations, and the daily collections.
func (w *World) Step(day simtime.Day) {
	w.today = day
	w.registeredToday = w.registeredToday[:0]
	w.Registry.Tick(day)

	if w.S.GoDaddyBreach && day == GoDaddyBreachStart {
		w.triggerGoDaddyBreach(day)
	}

	for e := w.popDue(day); e != nil; e = w.popDue(day) {
		w.handle(e)
	}

	n := w.poisson(w.S.registrationRate(day))
	for i := 0; i < n; i++ {
		w.registerNewDomain(day)
	}

	w.collectWHOIS(day)
	w.collectADNS(day)
	w.collectCRL(day)
}

// poisson draws a Poisson-distributed count with the given mean.
func (w *World) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's algorithm; fine for the small means used here.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= w.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

func (w *World) handle(e *event) {
	switch e.kind {
	case evDomainExpiry:
		w.onDomainExpiry(e)
	case evReRegister:
		w.onReRegister(e)
	case evRenewAuto:
		w.onRenewAuto(e)
	case evRenewManual:
		w.onRenewManual(e)
	case evCDNDepart:
		w.onCDNDepart(e)
	case evCDNRenew:
		w.onCDNRenew(e)
	case evCompromise:
		w.onCompromise(e)
	case evOtherRevoke:
		w.onOtherRevoke(e)
	}
}

// registerNewDomain creates a fresh e2LD with a new registrant.
func (w *World) registerNewDomain(day simtime.Day) {
	w.nextName++
	tld := "com"
	if w.rng.Float64() < 0.25 {
		tld = "net"
	}
	name := fmt.Sprintf("d%06d.%s", w.nextName, tld)
	w.registerDomain(name, day, 1)
}

// registerDomain performs a (re-)registration cycle for name.
func (w *World) registerDomain(name string, day simtime.Day, generation int) {
	w.nextOwner++
	registrant := fmt.Sprintf("r%06d", w.nextOwner)
	years := 1
	if w.rng.Float64() < 0.2 {
		years = 2
	}
	reg, err := w.Registry.Register(name, registrant, pickRegistrar(w.rng), day, years)
	if err != nil {
		return // not yet released; skip
	}
	d := &domainState{
		name:       name,
		registrant: registrant,
		account:    "acct:" + registrant,
		active:     true,
		intendKeep: true,
		generation: generation,
	}
	w.domains[name] = d
	w.registeredToday = append(w.registeredToday, name)
	w.installSelfDNS(name)
	w.schedule(reg.Expires, evDomainExpiry, name, nil)

	if w.rng.Float64() >= w.S.httpsProb(day) {
		d.hosting = HostNone
		return
	}
	w.chooseHosting(d, day)
}

func pickRegistrar(rng *rand.Rand) string {
	registrars := []string{"GoDaddy", "Namecheap", "Tucows", "Gandi", "NameSilo"}
	return registrars[rng.Intn(len(registrars))]
}

// installSelfDNS points the domain at generic self-hosting infrastructure.
func (w *World) installSelfDNS(name string) {
	zone := w.zoneFor(name)
	if zone == nil {
		return
	}
	w.DNS.Mutate(func() {
		zone.Remove(name, dnssim.TypeNS, "")
		zone.Remove(name, dnssim.TypeA, "")
		_ = zone.Add(dnssim.Record{Name: name, Type: dnssim.TypeNS, TTL: 86400, Data: "ns1.hoster.net"})
		_ = zone.Add(dnssim.Record{Name: name, Type: dnssim.TypeNS, TTL: 86400, Data: "ns2.hoster.net"})
		_ = zone.Add(dnssim.Record{Name: name, Type: dnssim.TypeA, TTL: 300, Data: "198.51.100.7"})
	})
}

func (w *World) zoneFor(name string) *dnssim.Zone {
	switch dnsname.Parent(name) {
	case "com":
		return w.comZone
	case "net":
		return w.netZone
	}
	return nil
}

// chooseHosting picks and provisions an HTTPS setup for a domain.
func (w *World) chooseHosting(d *domainState, day simtime.Day) {
	r := w.rng.Float64()
	switch {
	case r < w.S.cdnProb(day):
		mode := cdn.ModeNS
		hosting := HostCDNNS
		if w.rng.Float64() < 0.3 {
			mode = cdn.ModeCNAME
			hosting = HostCDNCNAME
		}
		if _, err := w.CDN.Enroll(d.name, mode, day); err == nil {
			d.hosting = hosting
			w.scheduleCDNLifecycle(d.name, day)
			return
		}
		fallthrough
	case r < w.S.cdnProb(day)+w.S.PlatformShare:
		d.hosting = HostPlatform
		d.issuer = ca.IssuerCPanel
		d.account = "platform:cpanel"
		w.issueFor(d, day)
	default:
		d.hosting = HostSelf
		d.issuer = w.pickSelfCA(day)
		w.issueFor(d, day)
	}
}

// pickSelfCA chooses a CA for a self-hosted domain, weighted by profile
// share among CAs active at the day; automated CAs only exist post-launch.
func (w *World) pickSelfCA(day simtime.Day) x509sim.IssuerID {
	type cand struct {
		id x509sim.IssuerID
		p  float64
	}
	var cands []cand
	total := 0.0
	for _, p := range w.Dir.All() {
		if p.ManagedTLS || day < p.ActiveFrom {
			continue
		}
		cands = append(cands, cand{p.ID, p.Share})
		total += p.Share
	}
	r := w.rng.Float64() * total
	for _, c := range cands {
		if r < c.p {
			return c.id
		}
		r -= c.p
	}
	return cands[len(cands)-1].id
}

// issueFor obtains a certificate for a domain from its chosen CA and
// schedules renewal and revocation events.
func (w *World) issueFor(d *domainState, day simtime.Day) {
	caInst := w.CAs[d.issuer]
	if caInst == nil {
		return
	}
	if day < caInst.Profile().ActiveFrom {
		// Chosen CA not live yet (platform CAs early on): fall back.
		d.issuer = w.pickSelfCA(day)
		caInst = w.CAs[d.issuer]
	}
	names := []string{d.name, "www." + d.name}
	cert, err := caInst.Issue(ca.Request{Account: d.account, Names: names}, day)
	if err != nil {
		return
	}
	w.afterIssue(d, cert, day)
}

// afterIssue schedules renewal, compromise, and revocation events for a
// fresh certificate.
func (w *World) afterIssue(d *domainState, cert *x509sim.Certificate, day simtime.Day) {
	prof, _ := w.Dir.Profile(cert.Issuer)
	if prof.Automated {
		w.schedule(cert.NotAfter-simtime.Day(w.S.RenewBeforeDays), evRenewAuto, d.name, cert)
	} else {
		w.schedule(cert.NotAfter+1, evRenewManual, d.name, cert)
	}
	w.maybeScheduleCompromise(cert, day)
	w.maybeScheduleOtherRevocation(cert, day)
}

func (w *World) maybeScheduleCompromise(cert *x509sim.Certificate, day simtime.Day) {
	p := w.S.CompromiseProbShort
	if cert.LifetimeDays() > 180 {
		p = w.S.CompromiseProbLong
	}
	if w.rng.Float64() >= p {
		return
	}
	delay := int(w.rng.ExpFloat64() * w.S.CompromiseMeanDelay)
	if delay > w.S.CompromiseMaxDelay {
		delay = w.S.CompromiseMaxDelay
	}
	w.schedule(day+simtime.Day(delay), evCompromise, "", cert)
}

func (w *World) maybeScheduleOtherRevocation(cert *x509sim.Certificate, day simtime.Day) {
	if w.rng.Float64() >= w.S.OtherRevocationProb {
		return
	}
	at := day + simtime.Day(w.rng.Intn(cert.LifetimeDays()))
	w.schedule(at, evOtherRevoke, "", cert)
}

// scheduleCDNLifecycle schedules churn and renewal sweeps for a CDN customer.
func (w *World) scheduleCDNLifecycle(name string, day simtime.Day) {
	if w.S.CDNAnnualChurn > 0 {
		years := w.rng.ExpFloat64() / w.S.CDNAnnualChurn
		w.schedule(day+simtime.Day(years*365), evCDNDepart, name, nil)
	}
	// Cloudflare reissues well before expiry (~120-day cadence on 365-day
	// certs), stacking overlapping validity — which lengthens managed-TLS
	// staleness (Figure 6).
	w.schedule(day+120, evCDNRenew, name, nil)
}

func (w *World) onDomainExpiry(e *event) {
	d := w.domains[e.domain]
	if d == nil || !d.active {
		return
	}
	reg, status, ok := w.Registry.Lookup(e.domain)
	if !ok {
		return
	}
	if status == registry.StatusActive && reg.Expires > e.day {
		// Already renewed (e.g. pre-release sale); reschedule.
		w.schedule(reg.Expires, evDomainExpiry, e.domain, nil)
		return
	}
	if w.rng.Float64() < w.S.DomainRenewProb {
		if err := w.Registry.Renew(e.domain, e.day, 1); err == nil {
			reg, _, _ := w.Registry.Lookup(e.domain)
			w.schedule(reg.Expires, evDomainExpiry, e.domain, nil)
			return
		}
	}
	// Lapse: the owner walks away. Managed TLS stays enrolled until DNS
	// dies; automation keeps renewing until validation fails.
	d.intendKeep = false
	d.active = false
	releaseDay := reg.Expires + registry.GraceDays + registry.RedemptionDays + registry.PendingDeleteDays + 1
	if w.rng.Float64() < w.S.ReRegistrationProb {
		delay := simtime.Day(1)
		if w.rng.Float64() >= w.S.DropCatchProb && w.S.ReRegistrationMaxDelay > 0 {
			delay = 1 + simtime.Day(w.rng.Intn(w.S.ReRegistrationMaxDelay))
		}
		w.schedule(releaseDay+delay, evReRegister, e.domain, nil)
	}
	// The departing owner tears down hosting at release.
	if c, ok := w.CDN.Customer(e.domain); ok && c.Active() {
		_ = w.CDN.Depart(e.domain, releaseDay)
	}
}

func (w *World) onReRegister(e *event) {
	_, status, _ := w.Registry.Lookup(e.domain)
	if status != registry.StatusAvailable {
		return
	}
	old := w.domains[e.domain]
	gen := 1
	if old != nil {
		gen = old.generation + 1
	}
	w.registerDomain(e.domain, e.day, gen)
}

func (w *World) onRenewAuto(e *event) {
	d := w.domains[e.domain]
	if d == nil {
		return
	}
	caInst := w.CAs[e.cert.Issuer]
	if caInst == nil {
		return
	}
	// Unattended automation first: relies purely on validation reuse, which
	// is how §7.1's "automatic issuance" extends broken name-to-key
	// mappings after an owner walks away.
	cert, err := caInst.Issue(ca.Request{
		Account:        accountForCert(d, e.cert),
		Names:          e.cert.Names,
		Key:            e.cert.Key,
		SkipValidation: true,
	}, e.day)
	if err != nil {
		// Reuse window expired: automation re-validates, succeeding only if
		// the account still controls the domain.
		cert, err = caInst.Issue(ca.Request{
			Account: accountForCert(d, e.cert),
			Names:   e.cert.Names,
			Key:     e.cert.Key,
		}, e.day)
	}
	if err != nil {
		return // automation finally fails; the chain dies
	}
	w.afterIssue(d, cert, e.day)
}

// accountForCert returns the account that has been driving this
// certificate chain. The chain keeps its original operator even if the
// domain changed hands (the new owner starts a separate chain).
func accountForCert(d *domainState, cert *x509sim.Certificate) string {
	if d.hosting == HostPlatform && cert.Issuer == ca.IssuerCPanel {
		return "platform:cpanel"
	}
	return d.account
}

func (w *World) onRenewManual(e *event) {
	d := w.domains[e.domain]
	if d == nil || !d.active || !d.intendKeep {
		return // owners intending to drop the domain stop issuing (§7.1)
	}
	if w.rng.Float64() >= w.S.CertManualRenewProb {
		return
	}
	caInst := w.CAs[e.cert.Issuer]
	if caInst == nil {
		return
	}
	cert, err := caInst.Issue(ca.Request{Account: d.account, Names: e.cert.Names, Key: e.cert.Key}, e.day)
	if err != nil {
		return
	}
	w.afterIssue(d, cert, e.day)
}

func (w *World) onCDNDepart(e *event) {
	c, ok := w.CDN.Customer(e.domain)
	if !ok || !c.Active() {
		return
	}
	d := w.domains[e.domain]
	if d == nil || !d.active {
		return // lapse already handled departure
	}
	if err := w.CDN.Depart(e.domain, e.day); err != nil {
		return
	}
	// Migrate to self-hosting with a fresh certificate chain.
	d.hosting = HostSelf
	d.issuer = w.pickSelfCA(e.day)
	w.installSelfDNS(e.domain)
	w.issueFor(d, e.day)
}

func (w *World) onCDNRenew(e *event) {
	c, ok := w.CDN.Customer(e.domain)
	if !ok || !c.Active() {
		return
	}
	if err := w.CDN.Renew(e.domain, e.day, 120); err == nil {
		w.schedule(e.day+120, evCDNRenew, e.domain, nil)
	}
}

func (w *World) onCompromise(e *event) {
	if e.cert.NotAfter < e.day {
		return // expired before discovery; nothing to revoke
	}
	if caInst := w.CAs[e.cert.Issuer]; caInst != nil {
		caInst.Revoke(e.cert, e.day, crl.KeyCompromise)
	}
}

func (w *World) onOtherRevoke(e *event) {
	if e.cert.NotAfter < e.day {
		return
	}
	reasons := []crl.Reason{
		crl.Superseded, crl.Superseded, crl.Superseded,
		crl.CessationOfOperation, crl.CessationOfOperation,
		crl.AffiliationChanged, crl.PrivilegeWithdrawn, crl.Unspecified,
	}
	reason := reasons[w.rng.Intn(len(reasons))]
	if caInst := w.CAs[e.cert.Issuer]; caInst != nil {
		caInst.Revoke(e.cert, e.day, reason)
	}
}

// triggerGoDaddyBreach mass-revokes a share of currently-valid GoDaddy
// certificates for key compromise, spread over the breach window.
func (w *World) triggerGoDaddyBreach(day simtime.Day) {
	gd := w.CAs[ca.IssuerGoDaddy]
	if gd == nil {
		return
	}
	certs, _ := w.Logs.Dedup()
	window := int(GoDaddyBreachEnd - GoDaddyBreachStart)
	for _, c := range certs {
		if c.Issuer != ca.IssuerGoDaddy || !c.ValidOn(day) {
			continue
		}
		// The breach exposed keys on the managed-WordPress issuance path:
		// recently-issued certificates (which is why Figure 8 still shows
		// ~99% of key compromises within 90 days of issuance).
		if day-c.NotBefore > 90 {
			continue
		}
		if w.rng.Float64() >= w.S.BreachShare {
			continue
		}
		at := day + simtime.Day(w.rng.Intn(window+1))
		w.schedule(at, evCompromise, "", c)
	}
}

// Daily collections.

func (w *World) collectWHOIS(day simtime.Day) {
	if !w.S.WHOISWindow.Contains(day) {
		return
	}
	if day == w.S.WHOISWindow.Start {
		// First collection day: observe every currently-registered domain.
		for _, name := range w.Registry.ActiveDomains() {
			if reg, _, ok := w.Registry.Lookup(name); ok {
				w.Whois.Observe(name, reg.Created)
			}
		}
		return
	}
	// Subsequent days: observing every domain daily is equivalent to
	// observing on registration, since Archive deduplicates creation dates.
	// Registrations were observed when they happened if inside the window:
	for _, name := range w.registeredToday {
		if reg, _, ok := w.Registry.Lookup(name); ok {
			w.Whois.Observe(name, reg.Created)
		}
	}
}

func (w *World) collectADNS(day simtime.Day) {
	if !w.S.ADNSWindow.Contains(day) {
		return
	}
	w.ADNS.Scan(day, w)
}

func (w *World) collectCRL(day simtime.Day) {
	if !w.S.CRLWindow.Contains(day) {
		return
	}
	for _, p := range w.Dir.All() {
		ok := w.rng.Float64() >= p.CRLFailRate
		w.Ledger.Record(p.Name, ok)
		if ok {
			w.crlOK[p.Name]++
		}
	}
	if day == w.S.CRLWindow.End-1 {
		w.finalizeCRLCollection(day)
	}
}

// finalizeCRLCollection merges the (cumulative) CRLs of every CA that was
// successfully fetched at least once during the window.
func (w *World) finalizeCRLCollection(day simtime.Day) {
	w.crlFetched = true
	for _, p := range w.Dir.All() {
		if w.crlOK[p.Name] == 0 {
			continue // never fetched: invisible to the pipeline
		}
		list := w.CAs[p.ID].Authority().Snapshot(day)
		for _, e := range list.Entries {
			key := e.Key()
			if prev, ok := w.revocations[key]; !ok || e.RevokedAt < prev.RevokedAt {
				w.revocations[key] = e
			}
		}
	}
}

// ExportZone renders one of the registry zones ("com" or "net") in
// master-file format — the CZDS-style zone snapshot cmd/dnsscand can serve.
func (w *World) ExportZone(tld string) (string, error) {
	var zone *dnssim.Zone
	switch tld {
	case "com":
		zone = w.comZone
	case "net":
		zone = w.netZone
	default:
		return "", fmt.Errorf("worldsim: no zone for TLD %q", tld)
	}
	var out string
	w.DNS.RLocked(func(map[string]*dnssim.Zone) {
		out = dnssim.FormatZoneFile(zone)
	})
	return out, nil
}
