package worldsim

import (
	"sort"

	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
)

// ScanLog is the compact daily active-DNS record: per day, the sorted set of
// domains whose DNS currently delegates to the managed-TLS provider, plus
// record-type counts for dataset accounting (Table 3). It is the
// memory-bounded equivalent of storing full dnssim snapshots for every day
// of the collection window; the ablation bench quantifies the tradeoff
// against the full-snapshot differ.
type ScanLog struct {
	days    []simtime.Day
	matched [][]string // sorted provider-delegated domains per day
	scanned []int      // domains scanned per day
	counts  map[dnssim.RRType]int
}

// NewScanLog creates an empty log.
func NewScanLog() *ScanLog {
	return &ScanLog{counts: make(map[dnssim.RRType]int)}
}

// Scan records one day's scan over every domain the world has seen.
func (l *ScanLog) Scan(day simtime.Day, w *World) {
	var matched []string
	scanned := 0
	for name := range w.domains {
		scanned++
		zone := w.zoneFor(name)
		if zone == nil {
			continue
		}
		isCDN := false
		ns := zone.Lookup(name, dnssim.TypeNS)
		for _, r := range ns {
			if w.CDN.IsProviderRecord(r) {
				isCDN = true
			}
		}
		cname := zone.Lookup("www."+name, dnssim.TypeCNAME)
		for _, r := range cname {
			if w.CDN.IsProviderRecord(r) {
				isCDN = true
			}
		}
		l.counts[dnssim.TypeNS] += len(ns)
		l.counts[dnssim.TypeCNAME] += len(cname)
		l.counts[dnssim.TypeA] += len(zone.Lookup(name, dnssim.TypeA))
		l.counts[dnssim.TypeAAAA] += len(zone.Lookup(name, dnssim.TypeAAAA))
		if isCDN {
			matched = append(matched, name)
		}
	}
	sort.Strings(matched)
	l.days = append(l.days, day)
	l.matched = append(l.matched, matched)
	l.scanned = append(l.scanned, scanned)
}

// Days returns the scan days.
func (l *ScanLog) Days() []simtime.Day { return l.days }

// MatchedOn returns the provider-delegated domains on the i-th scan day.
func (l *ScanLog) MatchedOn(i int) []string { return l.matched[i] }

// AvgRecordsPerDay returns the mean per-day record count by type.
func (l *ScanLog) AvgRecordsPerDay() map[dnssim.RRType]float64 {
	out := make(map[dnssim.RRType]float64, len(l.counts))
	if len(l.days) == 0 {
		return out
	}
	for t, n := range l.counts {
		out[t] = float64(n) / float64(len(l.days))
	}
	return out
}

// Departures lists domains that were provider-delegated on one scan day and
// not on the next — the paper's managed-TLS departure signal. Sorted-merge
// over the per-day sorted slices.
func (l *ScanLog) Departures() []dnssim.Departure {
	var out []dnssim.Departure
	for i := 1; i < len(l.days); i++ {
		prev, next := l.matched[i-1], l.matched[i]
		j, k := 0, 0
		for j < len(prev) {
			switch {
			case k >= len(next) || prev[j] < next[k]:
				out = append(out, dnssim.Departure{
					Domain:    prev[j],
					LastSeen:  l.days[i-1],
					FirstGone: l.days[i],
				})
				j++
			case prev[j] == next[k]:
				j++
				k++
			default:
				k++
			}
		}
	}
	return out
}
