package worldsim

import (
	"testing"

	"stalecert/internal/ca"
	"stalecert/internal/cdn"
	"stalecert/internal/crl"
	"stalecert/internal/simtime"
)

// shortScenario runs ~2.5 simulated years at small scale, ending after the
// 398-day era begins so both lifetime eras are exercised.
func shortScenario() Scenario {
	s := Quick()
	s.Start = simtime.MustParse("2019-01-01")
	s.End = simtime.MustParse("2021-06-30")
	s.BaseDailyRegistrations = 2
	s.WHOISWindow = simtime.Span{Start: simtime.MustParse("2019-06-01"), End: simtime.MustParse("2021-06-30")}
	s.ADNSWindow = simtime.Span{Start: simtime.MustParse("2021-01-01"), End: simtime.MustParse("2021-03-31")}
	s.CRLWindow = simtime.Span{Start: simtime.MustParse("2021-04-01"), End: simtime.MustParse("2021-06-30")}
	s.GoDaddyBreach = false
	return s
}

func TestWorldRunProducesAllDatasets(t *testing.T) {
	w := NewWorld(shortScenario())
	w.Run()

	if w.DomainCount() < 500 {
		t.Fatalf("only %d domains simulated", w.DomainCount())
	}
	certs, stats := w.Logs.Dedup()
	if len(certs) < 500 {
		t.Fatalf("only %d certificates in CT", len(certs))
	}
	if stats.PrecertMerged == 0 {
		t.Fatal("no precert/final pairs merged — CT submission path broken")
	}
	if w.Whois.Domains() == 0 {
		t.Fatal("WHOIS archive empty")
	}
	if len(w.ADNS.Days()) < 80 {
		t.Fatalf("aDNS scans = %d days", len(w.ADNS.Days()))
	}
	if len(w.RevocationEntries()) == 0 {
		t.Fatal("no revocations collected")
	}
	if len(w.Ledger.Rows()) == 0 {
		t.Fatal("CRL coverage ledger empty")
	}
}

func TestWorldDeterminism(t *testing.T) {
	s := shortScenario()
	s.End = s.Start + 400
	run := func() (int, int, int) {
		w := NewWorld(s)
		w.Run()
		certs, _ := w.Logs.Dedup()
		return w.DomainCount(), len(certs), len(w.RevocationEntries())
	}
	d1, c1, r1 := run()
	d2, c2, r2 := run()
	if d1 != d2 || c1 != c2 || r1 != r2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", d1, c1, r1, d2, c2, r2)
	}
	if d1 < 300 {
		t.Fatalf("domains = %d", d1)
	}
}

func TestWorldCertificatesRespectEraLimits(t *testing.T) {
	w := NewWorld(shortScenario())
	w.Run()
	certs, _ := w.Logs.Dedup()
	for _, c := range certs {
		limit := ca.MaxLifetime(c.NotBefore)
		if c.LifetimeDays() > limit {
			t.Fatalf("cert issued %s has lifetime %d > era max %d", c.NotBefore, c.LifetimeDays(), limit)
		}
	}
}

func TestWorldCDNDeparturesDetected(t *testing.T) {
	w := NewWorld(shortScenario())
	w.Run()
	deps := w.ADNS.Departures()
	if len(deps) == 0 {
		t.Fatal("no managed-TLS departures in aDNS window")
	}
	for _, d := range deps {
		if d.FirstGone <= d.LastSeen {
			t.Fatalf("departure ordering wrong: %+v", d)
		}
	}
	// Departed domains must have had Cloudflare-managed certs at some point.
	managed := 0
	for _, c := range w.CDN.Certificates() {
		if cdn.HasMarkerSAN(c, "cloudflaressl.com") {
			managed++
		}
	}
	if managed == 0 {
		t.Fatal("CDN issued no managed certificates")
	}
}

func TestWorldReRegistrationsVisibleInWHOIS(t *testing.T) {
	s := shortScenario()
	s.ReRegistrationProb = 0.9
	s.DomainRenewProb = 0.3
	w := NewWorld(s)
	w.Run()
	rr := w.Whois.ReRegistrations()
	if len(rr) == 0 {
		t.Fatal("no re-registrations observed in WHOIS archive")
	}
	for _, e := range rr {
		if e.NewCreation <= e.PrevCreation {
			t.Fatalf("re-registration dates inverted: %+v", e)
		}
	}
}

func TestWorldKeyCompromiseRevocations(t *testing.T) {
	s := shortScenario()
	s.CompromiseProbLong = 0.05
	s.CompromiseProbShort = 0.01
	w := NewWorld(s)
	w.Run()
	kc := 0
	other := 0
	for _, e := range w.RevocationEntries() {
		if e.Reason == crl.KeyCompromise {
			kc++
		} else {
			other++
		}
	}
	if kc == 0 {
		t.Fatal("no key-compromise revocations")
	}
	if other == 0 {
		t.Fatal("no other-reason revocations")
	}
	if kc >= other {
		t.Fatalf("key compromise (%d) should be rarer than other reasons (%d)", kc, other)
	}
}

func TestGoDaddyBreachSpike(t *testing.T) {
	s := Quick()
	s.Start = simtime.MustParse("2021-01-01")
	s.End = simtime.MustParse("2022-03-01")
	s.BaseDailyRegistrations = 3
	s.GoDaddyBreach = true
	s.CRLWindow = simtime.Span{Start: simtime.MustParse("2022-01-01"), End: simtime.MustParse("2022-03-01")}
	s.WHOISWindow = simtime.Span{}
	s.ADNSWindow = simtime.Span{}
	w := NewWorld(s)
	w.Run()

	inWindow, outside := 0, 0
	for _, e := range w.RevocationEntries() {
		if e.Reason != crl.KeyCompromise {
			continue
		}
		if e.RevokedAt >= GoDaddyBreachStart && e.RevokedAt <= GoDaddyBreachEnd {
			inWindow++
		} else {
			outside++
		}
	}
	if inWindow == 0 {
		t.Fatal("breach produced no key-compromise revocations")
	}
	if inWindow <= outside {
		t.Fatalf("breach spike (%d) not dominant over baseline (%d)", inWindow, outside)
	}
}

func TestValidatorBlocksNonOwners(t *testing.T) {
	s := shortScenario()
	s.End = s.Start + 200
	w := NewWorld(s)
	w.Run()
	// Pick any active domain and try issuing with a bogus account.
	var name string
	for _, n := range w.Registry.ActiveDomains() {
		name = n
		break
	}
	if name == "" {
		t.Skip("no active domains")
	}
	le := w.CAs[ca.IssuerLetsEncryptX3]
	if _, err := le.Issue(ca.Request{Account: "acct:attacker", Names: []string{name}}, w.Today()); err == nil {
		t.Fatal("CA issued to non-controlling account")
	}
}

func TestScanLogDepartureMerge(t *testing.T) {
	l := NewScanLog()
	l.days = []simtime.Day{10, 11, 12}
	l.matched = [][]string{{"a.com", "b.com", "c.com"}, {"b.com"}, {"b.com", "d.com"}}
	l.scanned = []int{3, 3, 4}
	deps := l.Departures()
	if len(deps) != 2 {
		t.Fatalf("departures = %+v", deps)
	}
	if deps[0].Domain != "a.com" || deps[1].Domain != "c.com" || deps[0].FirstGone != 11 {
		t.Fatalf("departures = %+v", deps)
	}
}
