package monitor

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnsname"
	"stalecert/internal/dnssim"
	"stalecert/internal/registry"
	"stalecert/internal/revcheck"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

func mkCert(t *testing.T, serial uint64, names []string, nb, na simtime.Day) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(x509sim.SerialNumber(serial), 1, x509sim.KeyID(serial), names, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCTWatcherIncrementalPolling(t *testing.T) {
	log := ctlog.New("watchme", ctlog.Shard{})
	srv := ctlog.NewServer(log)
	srv.SetNow(10)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ctlog.NewClient(ts.URL, ts.Client())

	w := NewCTWatcher(client, "watched.com")
	ctx := context.Background()

	// Empty log: no hits.
	hits, err := w.Poll(ctx)
	if err != nil || len(hits) != 0 {
		t.Fatalf("empty poll = %v %v", hits, err)
	}

	if _, err := log.AddChain(mkCert(t, 1, []string{"watched.com", "www.watched.com"}, 0, 100), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := log.AddChain(mkCert(t, 2, []string{"other.com"}, 0, 100), 10); err != nil {
		t.Fatal(err)
	}
	hits, err = w.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Domains[0] != "watched.com" {
		t.Fatalf("hits = %+v", hits)
	}
	// Second poll resumes: nothing new.
	hits, err = w.Poll(ctx)
	if err != nil || len(hits) != 0 {
		t.Fatalf("resume poll = %v %v", hits, err)
	}
	if w.NextIndex() != 2 {
		t.Fatalf("next = %d", w.NextIndex())
	}
	// Wildcard SAN on a watched domain matches too.
	if _, err := log.AddChain(mkCert(t, 3, []string{"*.watched.com"}, 0, 100), 11); err != nil {
		t.Fatal(err)
	}
	hits, _ = w.Poll(ctx)
	if len(hits) != 1 {
		t.Fatalf("wildcard hits = %+v", hits)
	}
}

func TestCTWatcherWatchEverything(t *testing.T) {
	log := ctlog.New("all", ctlog.Shard{})
	srv := ctlog.NewServer(log)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	w := NewCTWatcher(ctlog.NewClient(ts.URL, ts.Client())) // no filter
	if _, err := log.AddChain(mkCert(t, 1, []string{"anything.net"}, 0, 9), 1); err != nil {
		t.Fatal(err)
	}
	hits, err := w.Poll(context.Background())
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = %v %v", hits, err)
	}
}

func TestEvaluatorRegistrantChange(t *testing.T) {
	reg := registry.New("com")
	// New owner registered at day 200; cert issued day 100 by the old owner.
	if _, err := reg.Register("flip.com", "newowner", "DropCatch", 200, 1); err != nil {
		t.Fatal(err)
	}
	wsrv := whois.NewServer(&whois.RegistrySource{Registry: reg})
	addr, err := wsrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wsrv.Close()

	cert := mkCert(t, 1, []string{"flip.com"}, 100, 460)
	ev := &Evaluator{WhoisAddr: addr.String(), Now: 250}
	alerts, err := ev.Evaluate(context.Background(), Hit{
		Entry:   ctlog.Entry{Cert: cert},
		Domains: []string{"flip.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Kind != AlertRegistrantChange {
		t.Fatalf("alerts = %+v", alerts)
	}

	// A cert issued AFTER the re-registration is the new owner's: no alert.
	fresh := mkCert(t, 2, []string{"flip.com"}, 210, 400)
	alerts, err = ev.Evaluate(context.Background(), Hit{Entry: ctlog.Entry{Cert: fresh}, Domains: []string{"flip.com"}})
	if err != nil || len(alerts) != 0 {
		t.Fatalf("fresh cert alerts = %+v %v", alerts, err)
	}

	// Expired certs never alert.
	old := mkCert(t, 3, []string{"flip.com"}, 100, 150)
	alerts, _ = ev.Evaluate(context.Background(), Hit{Entry: ctlog.Entry{Cert: old}, Domains: []string{"flip.com"}})
	if len(alerts) != 0 {
		t.Fatalf("expired cert alerts = %+v", alerts)
	}
}

func TestEvaluatorManagedDeparture(t *testing.T) {
	com := dnssim.NewZone("com")
	// gone.com has migrated away (self NS); still.com is still delegated.
	if err := com.Add(dnssim.Record{Name: "gone.com", Type: dnssim.TypeNS, TTL: 60, Data: "ns1.self.net"}); err != nil {
		t.Fatal(err)
	}
	if err := com.Add(dnssim.Record{Name: "still.com", Type: dnssim.TypeNS, TTL: 60, Data: "kiki.ns.cloudflare.com"}); err != nil {
		t.Fatal(err)
	}
	store := dnssim.NewStore()
	store.AddZone(com)
	dsrv := dnssim.NewServer(store)
	addr, err := dsrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dsrv.Close()

	ev := &Evaluator{
		Resolver: &dnssim.Resolver{ServerAddr: addr.String(), Timeout: time.Second},
		IsProviderRecord: func(r dnssim.Record) bool {
			return r.Type == dnssim.TypeNS && dnsname.IsSubdomain(r.Data, "ns.cloudflare.com")
		},
		MarkerSuffix: "cloudflaressl.com",
		Now:          200,
	}
	ctx := context.Background()

	managedGone := mkCert(t, 1, []string{"sni5.cloudflaressl.com", "gone.com"}, 100, 460)
	alerts, err := ev.Evaluate(ctx, Hit{Entry: ctlog.Entry{Cert: managedGone}, Domains: []string{"gone.com"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Kind != AlertManagedDeparture {
		t.Fatalf("alerts = %+v", alerts)
	}

	managedStill := mkCert(t, 2, []string{"sni6.cloudflaressl.com", "still.com"}, 100, 460)
	alerts, err = ev.Evaluate(ctx, Hit{Entry: ctlog.Entry{Cert: managedStill}, Domains: []string{"still.com"}})
	if err != nil || len(alerts) != 0 {
		t.Fatalf("still-delegated alerts = %+v %v", alerts, err)
	}

	// Non-managed cert for a departed domain: the marker check gates it.
	uploaded := mkCert(t, 3, []string{"gone.com"}, 100, 460)
	alerts, _ = ev.Evaluate(ctx, Hit{Entry: ctlog.Entry{Cert: uploaded}, Domains: []string{"gone.com"}})
	if len(alerts) != 0 {
		t.Fatalf("uploaded cert alerts = %+v", alerts)
	}
}

func TestEvaluatorRevokedValid(t *testing.T) {
	cert := mkCert(t, 1, []string{"r.com"}, 100, 460)
	a := crl.NewAuthority("CA")
	a.Revoke(cert.Issuer, cert.Serial, 150, crl.KeyCompromise)
	ev := &Evaluator{
		Revocation: &revcheck.CRLChecker{Authorities: map[x509sim.IssuerID]*crl.Authority{cert.Issuer: a}},
		Now:        200,
	}
	alerts, err := ev.Evaluate(context.Background(), Hit{Entry: ctlog.Entry{Cert: cert}, Domains: []string{"r.com"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Kind != AlertRevokedValid {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestAlertKindStrings(t *testing.T) {
	if AlertRegistrantChange.String() != "registrant-change" ||
		AlertManagedDeparture.String() != "managed-tls-departure" ||
		AlertRevokedValid.String() != "revoked-but-valid" {
		t.Fatal("alert kind names wrong")
	}
}

func TestCTWatcherVerifiesConsistencyAcrossPolls(t *testing.T) {
	log := ctlog.New("consistent", ctlog.Shard{})
	srv := ctlog.NewServer(log)
	srv.SetNow(1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	w := NewCTWatcher(ctlog.NewClient(ts.URL, ts.Client()), "w.com")
	ctx := context.Background()

	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			serial := uint64(round*5 + i + 1)
			if _, err := log.AddChain(mkCert(t, serial, []string{"w.com"}, 0, 100), simtime.Day(round)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := w.Poll(ctx); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestCTWatcherDetectsLogSwap(t *testing.T) {
	// Simulate a log equivocating by swapping the backing log between polls:
	// same name, different content history.
	logA := ctlog.New("swap", ctlog.Shard{})
	for i := 0; i < 4; i++ {
		if _, err := logA.AddChain(mkCert(t, uint64(i+1), []string{"w.com"}, 0, 100), 1); err != nil {
			t.Fatal(err)
		}
	}
	srvA := ctlog.NewServer(logA)
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	w := NewCTWatcher(ctlog.NewClient(tsA.URL, tsA.Client()), "w.com")
	if _, err := w.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A different history served at the same place.
	logB := ctlog.New("swap", ctlog.Shard{})
	for i := 0; i < 6; i++ {
		if _, err := logB.AddChain(mkCert(t, uint64(i+100), []string{"other.com"}, 0, 100), 2); err != nil {
			t.Fatal(err)
		}
	}
	srvB := ctlog.NewServer(logB)
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	w.Client = ctlog.NewClient(tsB.URL, tsB.Client())

	if _, err := w.Poll(context.Background()); err == nil {
		t.Fatal("equivocating log not detected")
	}

	// Shrinking tree also detected.
	logC := ctlog.New("swap", ctlog.Shard{})
	if _, err := logC.AddChain(mkCert(t, 999, []string{"w.com"}, 0, 100), 3); err != nil {
		t.Fatal(err)
	}
	srvC := ctlog.NewServer(logC)
	tsC := httptest.NewServer(srvC.Handler())
	defer tsC.Close()
	w.Client = ctlog.NewClient(tsC.URL, tsC.Client())
	if _, err := w.Poll(context.Background()); err == nil {
		t.Fatal("shrinking log not detected")
	}
}
