package monitor

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"stalecert/internal/ctlog"
	"stalecert/internal/simtime"
)

// fakeSink records IngestEntries calls and serves a configurable checkpoint.
type fakeSink struct {
	next    uint64
	hasNext bool
	err     error

	entries []ctlog.Entry
	sths    []ctlog.SignedTreeHead
}

func (s *fakeSink) Checkpoint() (uint64, bool) { return s.next, s.hasNext }

func (s *fakeSink) IngestEntries(entries []ctlog.Entry, sth ctlog.SignedTreeHead) error {
	if s.err != nil {
		return s.err
	}
	s.entries = append(s.entries, entries...)
	s.sths = append(s.sths, sth)
	return nil
}

func TestCTWatcherWithSinkResumesAndPersists(t *testing.T) {
	log := ctlog.New("sink-log", ctlog.Shard{})
	day := simtime.MustParse("2022-06-01")
	for i := uint64(1); i <= 6; i++ {
		if _, err := log.AddChain(mkCert(t, i, []string{fmt.Sprintf("s%d.example.com", i)}, 100, 900), day); err != nil {
			t.Fatal(err)
		}
	}
	srv := ctlog.NewServer(log)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ctlog.NewClient(ts.URL, ts.Client())

	// A sink with a persisted checkpoint seeds the watcher's resume position:
	// only entries 4..5 are polled and persisted.
	sink := &fakeSink{next: 4, hasNext: true}
	w := NewCTWatcherWithSink(client, sink)
	if w.NextIndex() != 4 {
		t.Fatalf("NextIndex = %d, want 4 from sink checkpoint", w.NextIndex())
	}
	hits, err := w.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || len(sink.entries) != 2 {
		t.Fatalf("hits = %d, persisted = %d, want 2 each", len(hits), len(sink.entries))
	}
	if sink.entries[0].Index != 4 || sink.entries[1].Index != 5 {
		t.Fatalf("persisted indexes = %d, %d", sink.entries[0].Index, sink.entries[1].Index)
	}
	if len(sink.sths) != 1 || sink.sths[0].Size != 6 {
		t.Fatalf("persisted STHs = %+v", sink.sths)
	}

	// A sink without a checkpoint starts from zero.
	w2 := NewCTWatcherWithSink(client, &fakeSink{})
	if w2.NextIndex() != 0 {
		t.Fatalf("fresh-sink NextIndex = %d", w2.NextIndex())
	}
}

func TestCTWatcherSinkFailureFailsThePoll(t *testing.T) {
	log := ctlog.New("sink-err-log", ctlog.Shard{})
	day := simtime.MustParse("2022-06-01")
	if _, err := log.AddChain(mkCert(t, 1, []string{"a.example.com"}, 100, 900), day); err != nil {
		t.Fatal(err)
	}
	srv := ctlog.NewServer(log)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	boom := errors.New("disk full")
	sink := &fakeSink{err: boom}
	w := NewCTWatcherWithSink(ctlog.NewClient(ts.URL, ts.Client()), sink)
	if _, err := w.Poll(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Poll err = %v, want wrapped %v", err, boom)
	}
	// No entry may be observed-but-unpersisted: the resume position must not
	// advance past entries the sink rejected.
	if w.NextIndex() != 0 {
		t.Fatalf("NextIndex advanced to %d past unpersisted entries", w.NextIndex())
	}

	// Once the sink recovers, the same entries are re-polled and persisted.
	sink.err = nil
	hits, err := w.Poll(context.Background())
	if err != nil || len(hits) != 1 || len(sink.entries) != 1 {
		t.Fatalf("recovery poll = %d hits, %d persisted, %v", len(hits), len(sink.entries), err)
	}
}
