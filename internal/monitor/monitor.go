// Package monitor implements live stale-certificate watching — the
// operational counterpart of the paper's retrospective pipelines, in the
// spirit of BygoneSSL (§8): tail CT logs for certificates covering watched
// domains, then interrogate WHOIS and DNS to decide whether a valid
// certificate has gone stale under a third party.
//
// Three live checks per certificate:
//
//   - registrant change: the registry creation date postdates the
//     certificate's notBefore — a new owner acquired the domain while the
//     old owner's certificate is still valid;
//   - managed TLS departure: the certificate carries a provider marker SAN
//     but the domain's DNS no longer delegates to the provider;
//   - revocation: the certificate is revoked but unexpired (the key remains
//     usable against clients that don't check).
package monitor

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"stalecert/internal/ctlog"
	"stalecert/internal/dnsname"
	"stalecert/internal/dnssim"
	"stalecert/internal/merkle"
	"stalecert/internal/obs"
	"stalecert/internal/psl"
	"stalecert/internal/revcheck"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

// Watcher and evaluator metrics: poll cadence, entries tailed, hits on
// watched domains, and alerts raised per kind.
var (
	mPolls       = obs.Default().Counter("monitor_polls_total")
	mPollErrors  = obs.Default().Counter("monitor_poll_errors_total")
	mPollEntries = obs.Default().Counter("monitor_entries_total")
	mPollHits    = obs.Default().Counter("monitor_hits_total")
)

func alertCounter(k AlertKind) *obs.Counter {
	return obs.Default().Counter("monitor_alerts_total", "kind", k.String())
}

// Hit is a CT entry naming a watched domain.
type Hit struct {
	Entry   ctlog.Entry
	Domains []string // watched e2LDs the certificate covers
}

// EntrySink persists entries a watcher polls — in practice a
// certstore.Ingester, which writes them to the durable store and advances
// the persisted checkpoint. Checkpoint seeds the watcher's resume position,
// so a restarted watcher continues from where the previous process stopped
// instead of re-scraping the log; both live (stalewatch, staleapid) and
// batch paths then share the one persistent index the sink maintains.
type EntrySink interface {
	// Checkpoint returns the next entry index to fetch, if one is persisted.
	Checkpoint() (next uint64, ok bool)
	// IngestEntries durably records polled entries and the (already
	// consistency-verified) tree head they were fetched under.
	IngestEntries(entries []ctlog.Entry, sth ctlog.SignedTreeHead) error
}

// CTWatcher incrementally tails one CT log for watched e2LDs, verifying on
// every poll that the new signed tree head is consistent with the previous
// one — a monitor must notice a log rewriting history.
type CTWatcher struct {
	Client *ctlog.Client
	PSL    *psl.List
	// Sink, when set, durably receives every polled entry before hits are
	// returned; a poll whose sink write fails is reported as an error so no
	// entry is observed-but-unpersisted.
	Sink EntrySink

	watched map[string]bool
	next    uint64
	lastSTH ctlog.SignedTreeHead
	haveSTH bool
}

// NewCTWatcher creates a watcher over a log client for the given e2LDs.
// Pass no domains to watch everything.
func NewCTWatcher(client *ctlog.Client, domains ...string) *CTWatcher {
	w := &CTWatcher{Client: client, PSL: psl.Default(), watched: make(map[string]bool)}
	for _, d := range domains {
		w.watched[dnsname.Canonical(d)] = true
	}
	return w
}

// NewCTWatcherWithSink creates a watcher whose polled entries are persisted
// through sink and whose start position resumes from the sink's checkpoint.
func NewCTWatcherWithSink(client *ctlog.Client, sink EntrySink, domains ...string) *CTWatcher {
	w := NewCTWatcher(client, domains...)
	w.Sink = sink
	if next, ok := sink.Checkpoint(); ok {
		w.next = next
	}
	return w
}

// Watch adds a domain.
func (w *CTWatcher) Watch(domain string) {
	w.watched[dnsname.Canonical(domain)] = true
}

// NextIndex returns the resume position.
func (w *CTWatcher) NextIndex() uint64 { return w.next }

// ErrLogInconsistent reports a log whose new STH is not an append-only
// extension of the previous one.
var ErrLogInconsistent = errors.New("monitor: CT log tree heads inconsistent")

// Poll fetches entries added since the last poll and returns hits on
// watched domains. The new STH is checked for append-only consistency with
// the previous poll's head.
func (w *CTWatcher) Poll(ctx context.Context) ([]Hit, error) {
	mPolls.Inc()
	entries, sth, err := w.Client.Scrape(ctx, ctlog.ScrapeOptions{From: w.next})
	if err != nil {
		mPollErrors.Inc()
		return nil, err
	}
	if w.haveSTH && sth.Size >= w.lastSTH.Size {
		proof, err := w.Client.GetConsistency(ctx, w.lastSTH.Size, sth.Size)
		if err != nil {
			return nil, fmt.Errorf("monitor: consistency proof: %w", err)
		}
		if !merkle.VerifyConsistency(w.lastSTH.Size, sth.Size, w.lastSTH.Root, sth.Root, proof) {
			return nil, fmt.Errorf("%w: %d -> %d", ErrLogInconsistent, w.lastSTH.Size, sth.Size)
		}
	} else if w.haveSTH && sth.Size < w.lastSTH.Size {
		return nil, fmt.Errorf("%w: tree shrank %d -> %d", ErrLogInconsistent, w.lastSTH.Size, sth.Size)
	}
	w.lastSTH = sth
	w.haveSTH = true
	if w.Sink != nil && len(entries) > 0 {
		if err := w.Sink.IngestEntries(entries, sth); err != nil {
			mPollErrors.Inc()
			return nil, fmt.Errorf("monitor: persist entries: %w", err)
		}
	}
	mPollEntries.Add(uint64(len(entries)))
	var hits []Hit
	for _, e := range entries {
		if e.Index >= w.next {
			w.next = e.Index + 1
		}
		if domains := w.match(e.Cert); len(domains) > 0 {
			hits = append(hits, Hit{Entry: e, Domains: domains})
		}
	}
	mPollHits.Add(uint64(len(hits)))
	return hits, nil
}

func (w *CTWatcher) match(cert *x509sim.Certificate) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range cert.Names {
		base := strings.TrimPrefix(n, "*.")
		e2, err := w.PSL.ETLDPlusOne(base)
		if err != nil {
			continue
		}
		if (len(w.watched) == 0 || w.watched[e2]) && !seen[e2] {
			seen[e2] = true
			out = append(out, e2)
		}
	}
	sort.Strings(out)
	return out
}

// AlertKind classifies a staleness alert.
type AlertKind uint8

// Alert kinds.
const (
	AlertRegistrantChange AlertKind = iota
	AlertManagedDeparture
	AlertRevokedValid
)

// String names the kind.
func (k AlertKind) String() string {
	switch k {
	case AlertRegistrantChange:
		return "registrant-change"
	case AlertManagedDeparture:
		return "managed-tls-departure"
	case AlertRevokedValid:
		return "revoked-but-valid"
	}
	return "alert?"
}

// Alert is one detected live staleness condition.
type Alert struct {
	Kind   AlertKind
	Domain string
	Cert   *x509sim.Certificate
	// Detail is a human-readable explanation.
	Detail string
}

// Evaluator runs the live staleness checks against WHOIS, DNS and
// revocation infrastructure. Any nil data source disables its check.
type Evaluator struct {
	// WhoisAddr is a port-43 server for registry creation dates.
	WhoisAddr string
	// Resolver queries the authoritative DNS.
	Resolver *dnssim.Resolver
	// ProviderNS / ProviderCNAME match managed-TLS delegation records;
	// MarkerSuffix identifies provider-managed certificates.
	IsProviderRecord func(dnssim.Record) bool
	MarkerSuffix     string
	// Revocation checks certificate status.
	Revocation revcheck.Checker
	// Now is the evaluation day.
	Now simtime.Day
}

// Evaluate runs every enabled check for one hit.
func (ev *Evaluator) Evaluate(ctx context.Context, hit Hit) ([]Alert, error) {
	var alerts []Alert
	defer func() {
		for _, a := range alerts {
			alertCounter(a.Kind).Inc()
		}
	}()
	cert := hit.Entry.Cert
	if !cert.ValidOn(ev.Now) {
		return nil, nil // expired: no longer a threat
	}
	for _, domain := range hit.Domains {
		if ev.WhoisAddr != "" {
			rec, err := whois.Query(ctx, ev.WhoisAddr, domain)
			switch {
			case err == nil && rec.Created > cert.NotBefore:
				alerts = append(alerts, Alert{
					Kind: AlertRegistrantChange, Domain: domain, Cert: cert,
					Detail: fmt.Sprintf("registry creation %s postdates cert notBefore %s; %d stale days remain",
						rec.Created, cert.NotBefore, int(cert.NotAfter-ev.Now)+1),
				})
			case err != nil && err != whois.ErrNoMatch:
				return alerts, fmt.Errorf("monitor: whois %s: %w", domain, err)
			}
		}
		if ev.Resolver != nil && ev.IsProviderRecord != nil && ev.MarkerSuffix != "" {
			managed := hasMarker(cert, ev.MarkerSuffix)
			if managed {
				delegated, err := ev.delegated(ctx, domain)
				if err != nil {
					return alerts, err
				}
				if !delegated {
					alerts = append(alerts, Alert{
						Kind: AlertManagedDeparture, Domain: domain, Cert: cert,
						Detail: fmt.Sprintf("provider-managed cert but no provider delegation in DNS; %d stale days remain",
							int(cert.NotAfter-ev.Now)+1),
					})
				}
			}
		}
	}
	if ev.Revocation != nil {
		if st, reason, _ := ev.Revocation.Check(ctx, cert, ev.Now); st == revcheck.StatusRevoked {
			alerts = append(alerts, Alert{
				Kind: AlertRevokedValid, Domain: strings.Join(hit.Domains, ","), Cert: cert,
				Detail: fmt.Sprintf("revoked (%v) but unexpired until %s", reason, cert.NotAfter),
			})
		}
	}
	return alerts, nil
}

func hasMarker(cert *x509sim.Certificate, suffix string) bool {
	return HasProviderMarker(cert, suffix)
}

// HasProviderMarker reports whether the certificate carries a provider
// marker SAN (an sni*.<suffix> name), identifying it as provider-managed.
// Shared by the live evaluator and staleapid's evidence gathering so both
// classify certificates identically.
func HasProviderMarker(cert *x509sim.Certificate, suffix string) bool {
	for _, n := range cert.Names {
		if dnsname.IsSubdomain(n, suffix) && strings.HasPrefix(n, "sni") && n != suffix {
			return true
		}
	}
	return false
}

// delegated reports whether the domain's apex NS or www CNAME points at the
// provider.
func (ev *Evaluator) delegated(ctx context.Context, domain string) (bool, error) {
	for _, q := range []struct {
		name string
		typ  dnssim.RRType
	}{{domain, dnssim.TypeNS}, {"www." + domain, dnssim.TypeCNAME}} {
		recs, err := ev.Resolver.Query(ctx, q.name, q.typ)
		if err != nil {
			var nx *dnssim.NXDomainError
			if errors.As(err, &nx) {
				continue
			}
			return false, fmt.Errorf("monitor: dns %s %v: %w", q.name, q.typ, err)
		}
		for _, r := range recs {
			if ev.IsProviderRecord(r) {
				return true, nil
			}
		}
	}
	return false, nil
}
