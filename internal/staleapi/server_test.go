package staleapi

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stalecert/internal/certstore"
	"stalecert/internal/core"
	"stalecert/internal/crl"
	"stalecert/internal/obs"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func apiCert(t *testing.T, serial uint64, names []string, nb, na simtime.Day) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(x509sim.SerialNumber(serial), x509sim.IssuerID(serial%3+1), x509sim.KeyID(serial), names, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newTestStore builds a store with three certs: a plain one, a second-domain
// one, and a provider-managed one.
func newTestStore(t *testing.T) (*certstore.Store, []*x509sim.Certificate) {
	t.Helper()
	s, err := certstore.Open(certstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	certs := []*x509sim.Certificate{
		apiCert(t, 1, []string{"alpha.com", "www.alpha.com"}, 100, 900),
		apiCert(t, 2, []string{"beta.org"}, 100, 900),
		apiCert(t, 3, []string{"gamma.net", "sni9.cloudflaressl.com"}, 100, 900),
	}
	if _, err := s.Append(certs); err != nil {
		t.Fatal(err)
	}
	return s, certs
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestCertEndpoint(t *testing.T) {
	store, certs := newTestStore(t)
	srv := NewServer(Config{Store: store, Health: obs.NewHealth()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fp := certs[0].Fingerprint()
	resp, body := get(t, ts, "/v1/cert/"+fp.Hex())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full fp status = %d: %s", resp.StatusCode, body)
	}
	var cj CertJSON
	if err := json.Unmarshal(body, &cj); err != nil {
		t.Fatal(err)
	}
	if cj.Fingerprint != fp.Hex() || cj.Serial != 1 || len(cj.Names) != 2 {
		t.Fatalf("cert payload = %+v", cj)
	}

	resp, body = get(t, ts, "/v1/cert/"+fp.String()) // 16-hex short form
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("short fp status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cj); err != nil || cj.Serial != 1 {
		t.Fatalf("short lookup payload = %+v, %v", cj, err)
	}

	resp, _ = get(t, ts, "/v1/cert/"+strings.Repeat("ab", 32))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fp status = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/v1/cert/not-hex")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed fp status = %d", resp.StatusCode)
	}
}

func TestDomainCertsEndpoint(t *testing.T) {
	store, _ := newTestStore(t)
	srv := NewServer(Config{Store: store, Health: obs.NewHealth()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/domain/ALPHA.COM./certs") // canonicalised
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var dc DomainCertsResponse
	if err := json.Unmarshal(body, &dc); err != nil {
		t.Fatal(err)
	}
	if dc.Domain != "alpha.com" || len(dc.Certs) != 1 || dc.Certs[0].Serial != 1 {
		t.Fatalf("payload = %+v", dc)
	}

	resp, body = get(t, ts, "/v1/domain/nothing.net/certs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("miss status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &dc); err != nil || len(dc.Certs) != 0 {
		t.Fatalf("miss payload = %+v, %v", dc, err)
	}

	resp, _ = get(t, ts, "/v1/domain/bad..name/certs")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad domain status = %d", resp.StatusCode)
	}
}

func TestStalenessEndpointCachesEvidence(t *testing.T) {
	store, certs := newTestStore(t)
	var calls atomic.Int32
	evidence := func(ctx context.Context, domain string) (core.DomainEvidence, error) {
		calls.Add(1)
		return core.DomainEvidence{
			Revocations: []crl.Entry{
				{Issuer: certs[0].Issuer, Serial: 1, RevokedAt: 500, Reason: crl.KeyCompromise},
			},
			RevocationCutoff: simtime.NoDay,
		}, nil
	}
	srv := NewServer(Config{
		Store:    store,
		Evidence: evidence,
		Now:      func() simtime.Day { return simtime.MustParse("2023-01-01") },
		CacheTTL: time.Hour,
		Health:   obs.NewHealth(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/domain/alpha.com/staleness")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var sr StalenessResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cached || sr.CertsIndexed != 1 || len(sr.Stale) != 1 {
		t.Fatalf("first payload = %+v", sr)
	}
	if sr.Stale[0].Fingerprint != certs[0].Fingerprint().Hex() || sr.Stale[0].Reason == "" {
		t.Fatalf("verdict = %+v", sr.Stale[0])
	}
	if calls.Load() != 1 {
		t.Fatalf("evidence calls = %d", calls.Load())
	}

	// Second query is served from the cache: no new evidence fetch.
	_, body = get(t, ts, "/v1/domain/alpha.com/staleness")
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached || len(sr.Stale) != 1 {
		t.Fatalf("second payload = %+v", sr)
	}
	if calls.Load() != 1 {
		t.Fatalf("cached query refetched evidence: calls = %d", calls.Load())
	}

	// Invalidation (what the ingest loop does on new certs) forces a refetch.
	srv.Cache().Invalidate("staleness:alpha.com")
	_, body = get(t, ts, "/v1/domain/alpha.com/staleness")
	if err := json.Unmarshal(body, &sr); err != nil || sr.Cached {
		t.Fatalf("post-invalidate payload = %+v, %v", sr, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("invalidate did not refetch: calls = %d", calls.Load())
	}
}

func TestStalenessEvidenceErrors(t *testing.T) {
	store, _ := newTestStore(t)
	boom := errors.New("whois unreachable")
	srv := NewServer(Config{
		Store:    store,
		Evidence: func(context.Context, string) (core.DomainEvidence, error) { return core.DomainEvidence{}, boom },
		Health:   obs.NewHealth(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/domain/alpha.com/staleness")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "whois unreachable") {
		t.Fatalf("body = %s", body)
	}

	timeoutSrv := NewServer(Config{
		Store: store,
		Evidence: func(context.Context, string) (core.DomainEvidence, error) {
			return core.DomainEvidence{}, context.DeadlineExceeded
		},
		Health: obs.NewHealth(),
	})
	ts2 := httptest.NewServer(timeoutSrv.Handler())
	defer ts2.Close()
	resp, _ = get(t, ts2, "/v1/domain/alpha.com/staleness")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timeout status = %d", resp.StatusCode)
	}
}

// TestStalenessServesDegradedFromLastGood is the serve-stale contract: when
// live evidence fails but an expired verdict is retained, the endpoint
// answers 200 with "degraded": true, the evidence age, and an
// X-Stale-Evidence header instead of a 502 — and /readyz reports degraded
// (200) rather than unready (503).
func TestStalenessServesDegradedFromLastGood(t *testing.T) {
	store, certs := newTestStore(t)
	var fail atomic.Bool
	evidence := func(ctx context.Context, domain string) (core.DomainEvidence, error) {
		if fail.Load() {
			return core.DomainEvidence{}, errors.New("crl endpoint down")
		}
		return core.DomainEvidence{
			Revocations: []crl.Entry{
				{Issuer: certs[0].Issuer, Serial: 1, RevokedAt: 500, Reason: crl.KeyCompromise},
			},
			RevocationCutoff: simtime.NoDay,
		}, nil
	}
	health := obs.NewHealth()
	srv := NewServer(Config{
		Store:    store,
		Evidence: evidence,
		Now:      func() simtime.Day { return simtime.MustParse("2023-01-01") },
		CacheTTL: time.Minute,
		Health:   health,
	})
	health.Register("evidence", srv.EvidenceProbe)
	clock := time.Unix(1000, 0)
	srv.cache.now = func() time.Time { return clock }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Healthy round: fresh verdict, no degradation, probe clean.
	resp, body := get(t, ts, "/v1/domain/alpha.com/staleness")
	var sr StalenessResponse
	if err := json.Unmarshal(body, &sr); err != nil || sr.Degraded || len(sr.Stale) != 1 {
		t.Fatalf("healthy payload = %+v, %v", sr, err)
	}
	if h := resp.Header.Get(obs.StaleEvidenceHeader); h != "" {
		t.Fatalf("healthy response carries %s: %q", obs.StaleEvidenceHeader, h)
	}
	if err := srv.EvidenceProbe(context.Background()); err != nil {
		t.Fatalf("probe after success = %v", err)
	}

	// Entry expires and evidence starts failing: last-good served degraded.
	clock = clock.Add(3 * time.Minute)
	fail.Store(true)
	resp, body = get(t, ts, "/v1/domain/alpha.com/staleness")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded || sr.EvidenceAge != "3m0s" || len(sr.Stale) != 1 {
		t.Fatalf("degraded payload = %+v", sr)
	}
	if h := resp.Header.Get(obs.StaleEvidenceHeader); !strings.Contains(h, "alpha.com") {
		t.Fatalf("%s = %q", obs.StaleEvidenceHeader, h)
	}

	// Readiness is degraded (200 with a degraded body), not unready (503).
	err := srv.EvidenceProbe(context.Background())
	if !obs.IsDegraded(err) {
		t.Fatalf("probe after degraded serve = %v, want degraded", err)
	}
	resp, body = get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded evidence") {
		t.Fatalf("readyz = %d: %s", resp.StatusCode, body)
	}

	// A domain with no retained verdict still surfaces the hard error.
	resp, _ = get(t, ts, "/v1/domain/beta.org/staleness")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("cold-domain status = %d", resp.StatusCode)
	}

	// Recovery: evidence heals, the next query replaces the stale entry and
	// clears the probe.
	fail.Store(false)
	_, body = get(t, ts, "/v1/domain/alpha.com/staleness")
	sr = StalenessResponse{} // degraded/evidence_age are omitempty: start clean
	if err := json.Unmarshal(body, &sr); err != nil || sr.Degraded || sr.EvidenceAge != "" {
		t.Fatalf("recovered payload = %+v, %v", sr, err)
	}
	if err := srv.EvidenceProbe(context.Background()); err != nil {
		t.Fatalf("probe after recovery = %v", err)
	}
}

func TestStalenessNilEvidenceReportsEmpty(t *testing.T) {
	store, _ := newTestStore(t)
	srv := NewServer(Config{Store: store, Health: obs.NewHealth()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := get(t, ts, "/v1/domain/alpha.com/staleness")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var sr StalenessResponse
	if err := json.Unmarshal(body, &sr); err != nil || len(sr.Stale) != 0 || sr.CertsIndexed != 1 {
		t.Fatalf("payload = %+v, %v", sr, err)
	}
}

// TestReadyzFlips exercises the acceptance path: /readyz answers 503 while a
// probe fails and 200 once it is marked OK — the same flip staleapid's
// ingest-caught-up probe performs after its first successful sync.
func TestReadyzFlips(t *testing.T) {
	store, _ := newTestStore(t)
	health := obs.NewHealth()
	ready := obs.NewReady("ingest not caught up")
	health.Register("ingest-caught-up", ready.Probe)
	srv := NewServer(Config{Store: store, Health: health})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming readyz = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "ingest not caught up") {
		t.Fatalf("readyz body = %s", body)
	}
	resp, _ = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while warming = %d", resp.StatusCode)
	}

	ready.OK()
	resp, body = get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready readyz = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "ready ingest-caught-up") {
		t.Fatalf("readyz body = %s", body)
	}
}
