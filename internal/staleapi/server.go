// Package staleapi is the HTTP query surface over a persistent certstore:
// point lookups by certificate fingerprint, per-domain certificate listings,
// and live staleness verdicts computed by running the three detectors'
// per-domain logic (core.DomainStaleness) against the shared index. Hot
// domains are protected by a TTL'd LRU with singleflight, so a burst of
// identical staleness queries costs one evidence fetch.
package staleapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"stalecert/internal/certstore"
	"stalecert/internal/core"
	"stalecert/internal/dnsname"
	"stalecert/internal/obs"
	"stalecert/internal/shard"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Query-path metrics beyond the RED middleware: per-endpoint result sizes
// and evidence failures.
var (
	mStaleResults    = obs.Default().Counter("staleapi_stale_results_total")
	mEvidenceErrors  = obs.Default().Counter("staleapi_evidence_errors_total")
	mUnknownFP       = obs.Default().Counter("staleapi_unknown_fingerprint_total")
	mDomainQueries   = obs.Default().Counter("staleapi_domain_queries_total")
	mStalenessChecks = obs.Default().Counter("staleapi_staleness_checks_total")
)

// EvidenceFunc gathers one domain's staleness evidence (WHOIS creation date,
// CRL entries, DNS delegation state). A nil func disables evidence — the
// staleness endpoint then reports on an empty event set.
type EvidenceFunc func(ctx context.Context, domain string) (core.DomainEvidence, error)

// Server answers staleapid's /v1 API from a certstore.
type Server struct {
	store    *certstore.Store
	evidence EvidenceFunc
	now      func() simtime.Day
	cache    *Cache
	health   *obs.Health
	shard    shard.Self

	// evMu guards evErr, the most recent evidence outcome backing
	// EvidenceProbe.
	evMu  sync.Mutex
	evErr error
}

// Config assembles a Server.
type Config struct {
	// Store is required.
	Store *certstore.Store
	// Evidence fills DomainEvidence per staleness query; nil disables.
	Evidence EvidenceFunc
	// Now is the evaluation day for staleness windows.
	Now func() simtime.Day
	// CacheEntries/CacheTTL size the staleness LRU (defaults 1024, 5s).
	CacheEntries int
	CacheTTL     time.Duration
	// Health backs /healthz and /readyz on the API listener; defaults to
	// obs.DefaultHealth() so the daemon's probes show on both ports.
	Health *obs.Health
	// Shard is this replica's ring slice, served at /v1/shardmap with the
	// live certificate count filled in per request. Nil means the whole
	// keyspace: the default 0/1 assignment an unsharded daemon reports.
	Shard *shard.Self
}

// NewServer builds the API server.
func NewServer(cfg Config) *Server {
	if cfg.Store == nil {
		panic("staleapi: Config.Store is required")
	}
	if cfg.Now == nil {
		cfg.Now = func() simtime.Day { return simtime.MustParse("2023-01-01") }
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = 5 * time.Second
	}
	if cfg.Health == nil {
		cfg.Health = obs.DefaultHealth()
	}
	if cfg.Shard == nil {
		cfg.Shard = &shard.Self{
			Version: shard.MapVersion,
			Hash:    shard.HashName,
			VNodes:  shard.DefaultVNodes,
			Shard:   shard.Assignment{Index: 0, Count: 1},
		}
	}
	return &Server{
		store:    cfg.Store,
		evidence: cfg.Evidence,
		now:      cfg.Now,
		cache:    NewCache(cfg.CacheEntries, cfg.CacheTTL),
		health:   cfg.Health,
		shard:    *cfg.Shard,
	}
}

// Cache exposes the staleness cache (the ingest loop invalidates domains
// that just received new certificates).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the API mux. Wrap it in obs.Middleware for RED metrics,
// request IDs and panic recovery.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cert/{fp}", s.handleCert)
	mux.HandleFunc("GET /v1/domain/{e2ld}/certs", s.handleDomainCerts)
	mux.HandleFunc("GET /v1/domain/{e2ld}/staleness", s.handleStaleness)
	mux.HandleFunc("GET /v1/domains", s.handleDomains)
	mux.HandleFunc("GET /v1/shardmap", s.handleShardmap)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s\n", s.health.Uptime().Round(time.Millisecond))
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	obs.WriteReadyz(w, s.health.Check(ctx))
}

// CertJSON is the wire form of one certificate.
type CertJSON struct {
	Fingerprint string   `json:"fingerprint"`
	Short       string   `json:"fingerprint_short"`
	Serial      uint64   `json:"serial"`
	Issuer      uint16   `json:"issuer"`
	Key         uint64   `json:"key"`
	Names       []string `json:"names"`
	NotBefore   string   `json:"not_before"`
	NotAfter    string   `json:"not_after"`
	Usage       string   `json:"usage"`
	Precert     bool     `json:"precert"`
	SCTCount    uint8    `json:"sct_count"`
}

func certJSON(c *x509sim.Certificate) CertJSON {
	fp := c.Fingerprint()
	return CertJSON{
		Fingerprint: fp.Hex(),
		Short:       fp.String(),
		Serial:      uint64(c.Serial),
		Issuer:      uint16(c.Issuer),
		Key:         uint64(c.Key),
		Names:       append([]string(nil), c.Names...),
		NotBefore:   c.NotBefore.String(),
		NotAfter:    c.NotAfter.String(),
		Usage:       c.Usage.String(),
		Precert:     c.Precert,
		SCTCount:    c.SCTCount,
	}
}

// StaleJSON is one staleness verdict.
type StaleJSON struct {
	Fingerprint   string `json:"fingerprint"`
	Method        string `json:"method"`
	EventDay      string `json:"event_day"`
	StalenessDays int    `json:"staleness_days"`
	Domain        string `json:"domain,omitempty"`
	Reason        string `json:"reason,omitempty"`
}

// StalenessResponse is the /v1/domain/{e2ld}/staleness payload.
type StalenessResponse struct {
	Domain       string      `json:"domain"`
	Now          string      `json:"now"`
	CertsIndexed int         `json:"certs_indexed"`
	Stale        []StaleJSON `json:"stale"`
	Cached       bool        `json:"cached"`
	// Degraded marks a verdict served from the retained last-good cache
	// entry because live evidence gathering failed; EvidenceAge says how old
	// that evidence is. Such responses also carry an X-Stale-Evidence header.
	Degraded    bool   `json:"degraded,omitempty"`
	EvidenceAge string `json:"evidence_age,omitempty"`
}

// DomainCertsResponse is the /v1/domain/{e2ld}/certs payload.
type DomainCertsResponse struct {
	Domain string     `json:"domain"`
	Certs  []CertJSON `json:"certs"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleCert(w http.ResponseWriter, r *http.Request) {
	fp, short, err := x509sim.ParseFingerprint(r.PathValue("fp"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	var cert *x509sim.Certificate
	var ok bool
	if short {
		var prefix [8]byte
		copy(prefix[:], fp[:8])
		cert, ok = s.store.ByShortFingerprint(prefix)
	} else {
		cert, ok = s.store.ByFingerprint(fp)
	}
	if !ok {
		mUnknownFP.Inc()
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "unknown fingerprint"})
		return
	}
	// Cache under the canonical full fingerprint, never the request's own
	// spelling: the 16-hex short form and the 64-hex full form of one
	// certificate must share a single entry, not populate two.
	v, _, _ := s.cache.Do("cert:"+cert.Fingerprint().Hex(), func() (any, error) {
		return certJSON(cert), nil
	})
	writeJSON(w, http.StatusOK, v.(CertJSON))
}

// DomainsResponse is the /v1/domains payload: the indexed e2LDs matching the
// optional ?prefix= filter, truncated at ?limit= (Total counts all matches,
// so a caller can see the truncation). The gateway's scatter-merge endpoint
// is built on this.
type DomainsResponse struct {
	Domains []string `json:"domains"`
	Total   int      `json:"total"`
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	prefix := dnsname.Canonical(r.URL.Query().Get("prefix"))
	limit := 100
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad limit"})
			return
		}
		limit = min(n, 10000)
	}
	resp := DomainsResponse{Domains: []string{}}
	for _, d := range s.store.Domains() {
		if !strings.HasPrefix(d, prefix) {
			continue
		}
		resp.Total++
		if len(resp.Domains) < limit {
			resp.Domains = append(resp.Domains, d)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleShardmap(w http.ResponseWriter, _ *http.Request) {
	self := s.shard
	self.Certs = s.store.Len()
	writeJSON(w, http.StatusOK, self)
}

// domainParam canonicalises and validates the e2LD path segment.
func domainParam(r *http.Request) (string, error) {
	d := dnsname.Canonical(r.PathValue("e2ld"))
	if err := dnsname.Check(d, false); err != nil {
		return "", fmt.Errorf("bad domain: %w", err)
	}
	return d, nil
}

func (s *Server) handleDomainCerts(w http.ResponseWriter, r *http.Request) {
	domain, err := domainParam(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	mDomainQueries.Inc()
	certs := s.store.ByE2LD(domain)
	resp := DomainCertsResponse{Domain: domain, Certs: make([]CertJSON, 0, len(certs))}
	for _, c := range certs {
		resp.Certs = append(resp.Certs, certJSON(c))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStaleness(w http.ResponseWriter, r *http.Request) {
	domain, err := domainParam(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	mStalenessChecks.Inc()
	ctx := r.Context()
	v, info, err := s.cache.Do("staleness:"+domain, func() (any, error) {
		return s.staleness(ctx, domain)
	})
	if err != nil {
		mEvidenceErrors.Inc()
		s.noteEvidence(err)
		status := http.StatusBadGateway
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, errorJSON{Error: err.Error()})
		return
	}
	resp := v.(StalenessResponse)
	resp.Cached = info.Hit
	if info.Stale {
		// Live evidence failed but a last-good verdict is retained: serve it
		// marked degraded rather than 502ing the query.
		mEvidenceErrors.Inc()
		s.noteEvidence(fmt.Errorf("serving stale evidence for %s", domain))
		resp.Degraded = true
		resp.EvidenceAge = info.Age.Round(time.Millisecond).String()
		w.Header().Set(obs.StaleEvidenceHeader,
			fmt.Sprintf("staleness:%s age=%s", domain, resp.EvidenceAge))
	} else {
		s.noteEvidence(nil)
	}
	writeJSON(w, http.StatusOK, resp)
}

// noteEvidence tracks the last evidence outcome behind the evidence-degraded
// readiness probe: failures flip /readyz to degraded (200 — the daemon still
// answers, on last-good data), a success clears it.
func (s *Server) noteEvidence(err error) {
	s.evMu.Lock()
	s.evErr = err
	s.evMu.Unlock()
}

// EvidenceProbe is a readiness probe reporting degraded (not unready) while
// the most recent evidence gathering failed. Register it with the daemon's
// Health.
func (s *Server) EvidenceProbe(context.Context) error {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return obs.Degraded(s.evErr)
}

// staleness computes one domain's verdict: gather evidence, run the shared
// per-domain detector logic against the store index, render. The stage
// timings (evidence vs detect) are mirrored into the request's distributed
// trace, so a slow staleness query shows which half cost the time.
func (s *Server) staleness(ctx context.Context, domain string) (StalenessResponse, error) {
	tr := obs.NewTrace("staleness " + domain)
	defer func() {
		tr.End()
		if id, ok := obs.RequestIDFromContext(ctx); ok {
			tr.Record(nil, id, "staleapid")
		}
	}()
	var ev core.DomainEvidence
	ev.RevocationCutoff = simtime.NoDay
	if s.evidence != nil {
		sp := tr.StartSpan("evidence")
		var err error
		ev, err = s.evidence(ctx, domain)
		sp.End()
		if err != nil {
			return StalenessResponse{}, fmt.Errorf("evidence for %s: %w", domain, err)
		}
	}
	now := s.now()
	sp := tr.StartSpan("detect")
	stale := core.DomainStaleness(s.store, domain, ev)
	sp.End()
	resp := StalenessResponse{
		Domain:       domain,
		Now:          now.String(),
		CertsIndexed: len(s.store.ByE2LD(domain)),
		Stale:        make([]StaleJSON, 0, len(stale)),
	}
	for _, sc := range stale {
		sj := StaleJSON{
			Fingerprint:   sc.Cert.Fingerprint().Hex(),
			Method:        sc.Method.String(),
			EventDay:      sc.EventDay.String(),
			StalenessDays: sc.StalenessDays(),
			Domain:        sc.Domain,
		}
		if sc.Method == core.MethodRevocation || sc.Method == core.MethodKeyCompromise {
			sj.Reason = sc.Reason.String()
		}
		resp.Stale = append(resp.Stale, sj)
		mStaleResults.Inc()
	}
	return resp, nil
}
