package staleapi

import (
	"container/list"
	"sync"
	"time"

	"stalecert/internal/obs"
)

// Cache metric families: hit/miss/eviction counters plus the singleflight
// counter for callers that piggybacked on an in-flight computation instead
// of recomputing (the hot-domain thundering-herd guard).
var (
	mCacheHits        = obs.Default().Counter("staleapi_cache_hits_total")
	mCacheMisses      = obs.Default().Counter("staleapi_cache_misses_total")
	mCacheEvictions   = obs.Default().Counter("staleapi_cache_evictions_total")
	mCacheExpired     = obs.Default().Counter("staleapi_cache_expired_total")
	mCacheStaleServed = obs.Default().Counter("staleapi_cache_stale_served_total")
	mFlightShared     = obs.Default().Counter("staleapi_singleflight_shared_total")
	mCacheSize        = obs.Default().Gauge("staleapi_cache_entries")
)

// call is one in-flight computation other callers can wait on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a TTL'd LRU with singleflight semantics: concurrent Do calls for
// the same key run the loader once and share its result. Staleness queries
// on hot domains fan in here — a burst of identical queries costs one
// evidence fetch.
//
// Expired entries are retained as "last-good" until evicted by capacity: a
// loader failure falls back to the stale value (CacheInfo.Stale) instead of
// surfacing the error, the serve-stale degradation the query daemons build
// on.
type Cache struct {
	max int
	ttl time.Duration
	now func() time.Time // injectable for tests

	mu    sync.Mutex
	ll    *list.List // front = most recent
	items map[string]*list.Element
	calls map[string]*call
}

type cacheEntry struct {
	key     string
	val     any
	stored  time.Time
	expires time.Time
}

// CacheInfo describes where a Do result came from.
type CacheInfo struct {
	// Hit: the value was served fresh from the cache.
	Hit bool
	// Stale: the loader failed and the value is the retained last-good
	// (expired) entry — degraded service, not an error.
	Stale bool
	// Age is how long ago a stale value was originally computed.
	Age time.Duration
}

// NewCache creates a cache holding at most max entries, each fresh for ttl.
// max <= 0 disables storage (every Do runs the loader, still deduplicated by
// singleflight); ttl <= 0 means entries never expire.
func NewCache(max int, ttl time.Duration) *Cache {
	return &Cache{
		max:   max,
		ttl:   ttl,
		now:   time.Now,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		calls: make(map[string]*call),
	}
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Do returns the cached value for key, or runs loader (once across
// concurrent callers) and caches its result. info reports whether the value
// was a fresh cache hit, and — when the loader fails but an expired
// last-good entry is retained — whether the returned value is stale (in
// which case err is nil and the caller should mark the response degraded).
// Loader errors are never cached.
func (c *Cache) Do(key string, loader func() (any, error)) (v any, info CacheInfo, err error) {
	c.mu.Lock()
	var staleVal any
	var staleAge time.Duration
	haveStale := false
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		if c.ttl <= 0 || c.now().Before(ent.expires) {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			mCacheHits.Inc()
			return ent.val, CacheInfo{Hit: true}, nil
		}
		// Expired: no longer a hit, but keep the entry as last-good so a
		// failing loader can degrade to it instead of erroring.
		staleVal, staleAge, haveStale = ent.val, c.now().Sub(ent.stored), true
		mCacheExpired.Inc()
	}
	serveStale := func(cl *call) (any, CacheInfo, error) {
		if cl.err != nil && haveStale {
			mCacheStaleServed.Inc()
			return staleVal, CacheInfo{Stale: true, Age: staleAge}, nil
		}
		return cl.val, CacheInfo{}, cl.err
	}
	if cl, ok := c.calls[key]; ok {
		c.mu.Unlock()
		mFlightShared.Inc()
		<-cl.done
		return serveStale(cl)
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.mu.Unlock()
	mCacheMisses.Inc()

	cl.val, cl.err = loader()
	close(cl.done)

	c.mu.Lock()
	delete(c.calls, key)
	if cl.err == nil && c.max > 0 {
		now := c.now()
		if el, ok := c.items[key]; ok {
			ent := el.Value.(*cacheEntry)
			ent.val, ent.stored, ent.expires = cl.val, now, now.Add(c.ttl)
			c.ll.MoveToFront(el)
		} else {
			c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: cl.val, stored: now, expires: now.Add(c.ttl)})
		}
		for c.ll.Len() > c.max {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			mCacheEvictions.Inc()
		}
	}
	mCacheSize.Set(float64(c.ll.Len()))
	c.mu.Unlock()
	return serveStale(cl)
}

// Invalidate drops one key (e.g. after new certificates for a domain were
// ingested).
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
		mCacheSize.Set(float64(c.ll.Len()))
	}
}
