package staleapi

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"stalecert/internal/obs"
)

// Cache metric families: hit/miss/eviction counters plus the singleflight
// counter for callers that piggybacked on an in-flight computation instead
// of recomputing (the hot-domain thundering-herd guard).
var (
	mCacheHits        = obs.Default().Counter("staleapi_cache_hits_total")
	mCacheMisses      = obs.Default().Counter("staleapi_cache_misses_total")
	mCacheEvictions   = obs.Default().Counter("staleapi_cache_evictions_total")
	mCacheExpired     = obs.Default().Counter("staleapi_cache_expired_total")
	mCacheStaleServed = obs.Default().Counter("staleapi_cache_stale_served_total")
	mFlightShared     = obs.Default().Counter("staleapi_singleflight_shared_total")
	mCacheSize        = obs.Default().Gauge("staleapi_cache_entries")
)

// call is one in-flight computation other callers can wait on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a TTL'd LRU with singleflight semantics: concurrent Do calls for
// the same key run the loader once and share its result. Staleness queries
// on hot domains fan in here — a burst of identical queries costs one
// evidence fetch.
//
// Expired entries are retained as "last-good" until evicted by capacity: a
// loader failure falls back to the stale value (CacheInfo.Stale) instead of
// surfacing the error, the serve-stale degradation the query daemons build
// on.
type Cache struct {
	max int
	ttl time.Duration
	now func() time.Time // injectable for tests

	// Last-good retention bounds (see SetStaleBounds). Zero values retain
	// expired entries until capacity eviction, the legacy behavior.
	staleMax int
	staleTTL time.Duration

	gauge *obs.Gauge // entry-count gauge (default: the package-wide one)

	mu    sync.Mutex
	ll    *list.List // front = most recent
	items map[string]*list.Element
	calls map[string]*call
}

type cacheEntry struct {
	key     string
	val     any
	stored  time.Time
	expires time.Time
}

// CacheInfo describes where a Do result came from.
type CacheInfo struct {
	// Hit: the value was served fresh from the cache.
	Hit bool
	// Stale: the loader failed and the value is the retained last-good
	// (expired) entry — degraded service, not an error.
	Stale bool
	// Age is how long ago a stale value was originally computed.
	Age time.Duration
}

// NewCache creates a cache holding at most max entries, each fresh for ttl.
// max <= 0 disables storage (every Do runs the loader, still deduplicated by
// singleflight); ttl <= 0 means entries never expire.
func NewCache(max int, ttl time.Duration) *Cache {
	return &Cache{
		max:   max,
		ttl:   ttl,
		now:   time.Now,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		calls: make(map[string]*call),
	}
}

// SetStaleBounds bounds how long and how many expired entries are retained
// as last-good serve-stale fallbacks. maxAge is measured past expiry: an
// entry expired longer than maxAge ago is dropped instead of served stale
// (0 = keep until capacity eviction). maxEntries caps how many expired
// entries are retained at once, dropping the longest-expired first (0 = no
// count bound). Without these bounds a cache whose key space keeps growing
// retains every last-good body it ever computed.
func (c *Cache) SetStaleBounds(maxEntries int, maxAge time.Duration) {
	c.mu.Lock()
	c.staleMax = maxEntries
	c.staleTTL = maxAge
	c.mu.Unlock()
}

// SetSizeGauge redirects this cache's entry-count gauge so embedders (the
// gateway's serve-stale cache) can export it under their own metric name.
func (c *Cache) SetSizeGauge(g *obs.Gauge) {
	c.mu.Lock()
	c.gauge = g
	c.mu.Unlock()
}

// setSize updates the entry-count gauge; caller holds c.mu.
func (c *Cache) setSize() {
	if c.gauge != nil {
		c.gauge.Set(float64(c.ll.Len()))
		return
	}
	mCacheSize.Set(float64(c.ll.Len()))
}

// removeLocked drops one element; caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.items, el.Value.(*cacheEntry).key)
}

// sweepStaleLocked enforces the stale-retention bounds; caller holds c.mu.
func (c *Cache) sweepStaleLocked(now time.Time) {
	if c.ttl <= 0 || (c.staleTTL <= 0 && c.staleMax <= 0) {
		return
	}
	var expired []*list.Element
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if now.Before(ent.expires) {
			el = next
			continue
		}
		if c.staleTTL > 0 && !now.Before(ent.expires.Add(c.staleTTL)) {
			c.removeLocked(el)
			mCacheEvictions.Inc()
		} else {
			expired = append(expired, el)
		}
		el = next
	}
	if c.staleMax > 0 && len(expired) > c.staleMax {
		sort.Slice(expired, func(i, j int) bool {
			return expired[i].Value.(*cacheEntry).expires.Before(expired[j].Value.(*cacheEntry).expires)
		})
		for _, el := range expired[:len(expired)-c.staleMax] {
			c.removeLocked(el)
			mCacheEvictions.Inc()
		}
	}
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Do returns the cached value for key, or runs loader (once across
// concurrent callers) and caches its result. info reports whether the value
// was a fresh cache hit, and — when the loader fails but an expired
// last-good entry is retained — whether the returned value is stale (in
// which case err is nil and the caller should mark the response degraded).
// Loader errors are never cached.
func (c *Cache) Do(key string, loader func() (any, error)) (v any, info CacheInfo, err error) {
	c.mu.Lock()
	var staleVal any
	var staleAge time.Duration
	haveStale := false
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		if c.ttl <= 0 || c.now().Before(ent.expires) {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			mCacheHits.Inc()
			return ent.val, CacheInfo{Hit: true}, nil
		}
		// Expired: no longer a hit, but keep the entry as last-good so a
		// failing loader can degrade to it instead of erroring — unless it
		// overstayed the stale-retention TTL, in which case it is dropped.
		now := c.now()
		if c.staleTTL > 0 && !now.Before(ent.expires.Add(c.staleTTL)) {
			c.removeLocked(el)
			mCacheEvictions.Inc()
			c.setSize()
		} else {
			staleVal, staleAge, haveStale = ent.val, now.Sub(ent.stored), true
		}
		mCacheExpired.Inc()
	}
	serveStale := func(cl *call) (any, CacheInfo, error) {
		if cl.err != nil && haveStale {
			mCacheStaleServed.Inc()
			return staleVal, CacheInfo{Stale: true, Age: staleAge}, nil
		}
		return cl.val, CacheInfo{}, cl.err
	}
	if cl, ok := c.calls[key]; ok {
		c.mu.Unlock()
		mFlightShared.Inc()
		<-cl.done
		return serveStale(cl)
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.mu.Unlock()
	mCacheMisses.Inc()

	cl.val, cl.err = loader()
	close(cl.done)

	c.mu.Lock()
	delete(c.calls, key)
	if cl.err == nil && c.max > 0 {
		now := c.now()
		if el, ok := c.items[key]; ok {
			ent := el.Value.(*cacheEntry)
			ent.val, ent.stored, ent.expires = cl.val, now, now.Add(c.ttl)
			c.ll.MoveToFront(el)
		} else {
			c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: cl.val, stored: now, expires: now.Add(c.ttl)})
		}
		for c.ll.Len() > c.max {
			oldest := c.ll.Back()
			c.removeLocked(oldest)
			mCacheEvictions.Inc()
		}
		c.sweepStaleLocked(now)
	}
	c.setSize()
	c.mu.Unlock()
	return serveStale(cl)
}

// Invalidate drops one key (e.g. after new certificates for a domain were
// ingested).
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
		c.setSize()
	}
}
