package staleapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"stalecert/internal/obs"
	"stalecert/internal/shard"
)

// Regression: cert responses are cached under the canonical 64-hex
// fingerprint, so querying the short 16-hex form and the full form of the
// same certificate populates ONE cache entry, not two divergent ones.
func TestCertCacheCanonicalKey(t *testing.T) {
	store, certs := newTestStore(t)
	srv := NewServer(Config{Store: store, Health: obs.NewHealth()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fp := certs[0].Fingerprint()
	_, full := get(t, ts, "/v1/cert/"+fp.Hex())
	if n := srv.Cache().Len(); n != 1 {
		t.Fatalf("cache holds %d entries after full-form query, want 1", n)
	}
	_, short := get(t, ts, "/v1/cert/"+fp.String())
	if n := srv.Cache().Len(); n != 1 {
		t.Fatalf("cache holds %d entries after both forms of one cert, want 1 (key not canonicalised)", n)
	}
	if string(full) != string(short) {
		t.Fatalf("forms diverge:\nfull:  %s\nshort: %s", full, short)
	}

	// A different certificate is, of course, a second entry.
	get(t, ts, "/v1/cert/"+certs[1].Fingerprint().String())
	if n := srv.Cache().Len(); n != 2 {
		t.Fatalf("cache holds %d entries for two certs, want 2", n)
	}
}

func TestDomainsEndpoint(t *testing.T) {
	store, _ := newTestStore(t)
	srv := NewServer(Config{Store: store, Health: obs.NewHealth()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/domains")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var dr DomainsResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	// newTestStore indexes alpha.com, beta.org, gamma.net and the provider
	// e2LD cloudflaressl.com; the listing is sorted.
	if dr.Total != 4 || len(dr.Domains) != 4 || dr.Domains[0] != "alpha.com" {
		t.Fatalf("domains = %+v", dr)
	}

	_, body = get(t, ts, "/v1/domains?prefix=be")
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Total != 1 || len(dr.Domains) != 1 || dr.Domains[0] != "beta.org" {
		t.Fatalf("prefix filter = %+v", dr)
	}

	_, body = get(t, ts, "/v1/domains?limit=2")
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Total != 4 || len(dr.Domains) != 2 {
		t.Fatalf("limit truncation = %+v, want 2 of 4", dr)
	}

	resp, _ = get(t, ts, "/v1/domains?limit=zero")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", resp.StatusCode)
	}
}

func TestShardmapEndpoint(t *testing.T) {
	store, certs := newTestStore(t)
	self := &shard.Self{Version: shard.MapVersion, Epoch: 7, Hash: shard.HashName,
		VNodes: shard.DefaultVNodes, Shard: shard.Assignment{Index: 1, Count: 3}}
	srv := NewServer(Config{Store: store, Health: obs.NewHealth(), Shard: self})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/shardmap")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var got shard.Self
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 || got.Shard != (shard.Assignment{Index: 1, Count: 3}) || got.Certs != len(certs) {
		t.Fatalf("shardmap = %+v, want epoch 7 slice 1/3 certs %d", got, len(certs))
	}

	// An unsharded server reports the whole keyspace: slice 0/1.
	plain := NewServer(Config{Store: store, Health: obs.NewHealth()})
	tp := httptest.NewServer(plain.Handler())
	defer tp.Close()
	_, body = get(t, tp, "/v1/shardmap")
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Shard != (shard.Assignment{Index: 0, Count: 1}) || got.Version != shard.MapVersion {
		t.Fatalf("unsharded shardmap = %+v, want slice 0/1", got)
	}
}
