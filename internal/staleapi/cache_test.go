package staleapi

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stalecert/internal/obs"
)

var errLoader = errors.New("loader failed")

func TestCacheHitMissAndLRU(t *testing.T) {
	c := NewCache(2, time.Hour)
	calls := 0
	load := func(v string) func() (any, error) {
		return func() (any, error) { calls++; return v, nil }
	}

	v, info, err := c.Do("a", load("A"))
	if err != nil || info.Hit || v != "A" || calls != 1 {
		t.Fatalf("first Do = %v %+v %v calls=%d", v, info, err, calls)
	}
	v, info, _ = c.Do("a", load("A2"))
	if !info.Hit || v != "A" || calls != 1 {
		t.Fatalf("second Do should hit: %v %+v calls=%d", v, info, calls)
	}

	c.Do("b", load("B"))
	c.Do("c", load("C")) // evicts "a" (least recent)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	_, info, _ = c.Do("a", load("A3"))
	if info.Hit {
		t.Fatal("evicted key still cached")
	}
	// "b" was evicted when "a" was re-added ("c" was more recent).
	_, info, _ = c.Do("c", load("C2"))
	if !info.Hit {
		t.Fatal("most-recent key evicted out of order")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Do("k", func() (any, error) { return 1, nil })
	if _, info, _ := c.Do("k", func() (any, error) { return 2, nil }); !info.Hit {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	v, info, _ := c.Do("k", func() (any, error) { return 2, nil })
	if info.Hit || v != 2 {
		t.Fatalf("expired entry served: %v %+v", v, info)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(8, time.Minute)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	v, info, err := c.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || info.Hit || v != "ok" {
		t.Fatalf("error was cached: %v %+v %v", v, info, err)
	}
}

func TestCacheServesStaleOnLoaderFailure(t *testing.T) {
	c := NewCache(8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	boom := errors.New("upstream down")

	c.Do("k", func() (any, error) { return "good", nil })
	now = now.Add(3 * time.Minute) // entry expires, retained as last-good

	v, info, err := c.Do("k", func() (any, error) { return nil, boom })
	if err != nil {
		t.Fatalf("stale fallback surfaced error: %v", err)
	}
	if v != "good" || !info.Stale || info.Hit {
		t.Fatalf("Do = %v %+v, want last-good stale value", v, info)
	}
	if info.Age != 3*time.Minute {
		t.Fatalf("Age = %v, want 3m", info.Age)
	}

	// A successful reload replaces the stale value and clears degradation.
	v, info, err = c.Do("k", func() (any, error) { return "fresh", nil })
	if err != nil || v != "fresh" || info.Stale {
		t.Fatalf("reload = %v %+v %v", v, info, err)
	}
	if v, info, _ := c.Do("k", func() (any, error) { return nil, boom }); v != "fresh" || !info.Hit {
		t.Fatalf("post-reload hit = %v %+v", v, info)
	}
}

func TestCacheStaleNotServedWithoutLastGood(t *testing.T) {
	c := NewCache(8, time.Minute)
	boom := errors.New("upstream down")
	_, info, err := c.Do("cold", func() (any, error) { return nil, boom })
	if err != boom || info.Stale {
		t.Fatalf("cold-key failure = %+v %v, want the raw error", info, err)
	}
}

func TestCacheInvalidateDropsLastGood(t *testing.T) {
	c := NewCache(8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	boom := errors.New("upstream down")

	c.Do("k", func() (any, error) { return "good", nil })
	now = now.Add(2 * time.Minute)
	c.Invalidate("k")
	_, info, err := c.Do("k", func() (any, error) { return nil, boom })
	if err != boom || info.Stale {
		t.Fatalf("invalidated last-good still served: %+v %v", info, err)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8, time.Minute)
	var loads atomic.Int32
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("hot", func() (any, error) {
				loads.Add(1)
				<-gate
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach Do before releasing the loader. A short
	// sleep is enough: stragglers that arrive later hit the cache instead,
	// which still means exactly one load.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(8, time.Hour)
	c.Do("k", func() (any, error) { return 1, nil })
	c.Invalidate("k")
	if _, info, _ := c.Do("k", func() (any, error) { return 2, nil }); info.Hit {
		t.Fatal("invalidated key still cached")
	}
	c.Invalidate("never-existed") // no-op
}

func TestCacheZeroMaxStillSingleflights(t *testing.T) {
	c := NewCache(0, time.Minute)
	c.Do("k", func() (any, error) { return 1, nil })
	if _, info, _ := c.Do("k", func() (any, error) { return 2, nil }); info.Hit {
		t.Fatal("max=0 cache stored an entry")
	}
}

func TestCacheStaleTTLDropsOverstayedLastGood(t *testing.T) {
	c := NewCache(8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.SetStaleBounds(0, 5*time.Minute)

	if _, _, err := c.Do("k", func() (any, error) { return "good", nil }); err != nil {
		t.Fatal(err)
	}

	// Expired but within the stale TTL: still served as last-good.
	now = now.Add(3 * time.Minute)
	v, info, err := c.Do("k", func() (any, error) { return nil, errLoader })
	if err != nil || !info.Stale || v != "good" {
		t.Fatalf("within stale TTL: v=%v info=%+v err=%v", v, info, err)
	}

	// Past expiry+staleTTL: the entry is dropped, the loader error surfaces.
	now = now.Add(4 * time.Minute)
	if _, _, err := c.Do("k", func() (any, error) { return nil, errLoader }); err == nil {
		t.Fatal("overstayed last-good entry still served")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want overstayed entry dropped", c.Len())
	}
}

func TestCacheStaleEntriesBound(t *testing.T) {
	c := NewCache(100, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.SetStaleBounds(2, 0)

	for _, k := range []string{"a", "b", "c", "d"} {
		k := k
		if _, _, err := c.Do(k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second) // distinct expiry times, oldest = "a"
	}
	now = now.Add(2 * time.Minute) // all four expire

	// An insert sweeps: only the 2 most recently expired survive as
	// last-good.
	if _, _, err := c.Do("e", func() (any, error) { return "e", nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 3 { // e (fresh) + c, d (stale)
		t.Fatalf("Len = %d, want 3 after stale-count sweep", got)
	}
	if _, _, err := c.Do("a", func() (any, error) { return nil, errLoader }); err == nil {
		t.Fatal("oldest-expired entry survived the count bound")
	}
	if v, info, err := c.Do("d", func() (any, error) { return nil, errLoader }); err != nil || !info.Stale || v != "d" {
		t.Fatalf("newest-expired entry not retained: v=%v info=%+v err=%v", v, info, err)
	}
}

func TestCacheSizeGaugeOverride(t *testing.T) {
	c := NewCache(8, time.Minute)
	g := obs.Default().Gauge("test_cache_entries_override")
	c.SetSizeGauge(g)
	if _, _, err := c.Do("k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if g.Value() != 1 {
		t.Fatalf("gauge = %v, want 1", g.Value())
	}
	c.Invalidate("k")
	if g.Value() != 0 {
		t.Fatalf("gauge = %v, want 0 after invalidate", g.Value())
	}
}
