package staleapi

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitMissAndLRU(t *testing.T) {
	c := NewCache(2, time.Hour)
	calls := 0
	load := func(v string) func() (any, error) {
		return func() (any, error) { calls++; return v, nil }
	}

	v, cached, err := c.Do("a", load("A"))
	if err != nil || cached || v != "A" || calls != 1 {
		t.Fatalf("first Do = %v %v %v calls=%d", v, cached, err, calls)
	}
	v, cached, _ = c.Do("a", load("A2"))
	if !cached || v != "A" || calls != 1 {
		t.Fatalf("second Do should hit: %v %v calls=%d", v, cached, calls)
	}

	c.Do("b", load("B"))
	c.Do("c", load("C")) // evicts "a" (least recent)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	_, cached, _ = c.Do("a", load("A3"))
	if cached {
		t.Fatal("evicted key still cached")
	}
	// "b" was evicted when "a" was re-added ("c" was more recent).
	_, cached, _ = c.Do("c", load("C2"))
	if !cached {
		t.Fatal("most-recent key evicted out of order")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Do("k", func() (any, error) { return 1, nil })
	if _, cached, _ := c.Do("k", func() (any, error) { return 2, nil }); !cached {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	v, cached, _ := c.Do("k", func() (any, error) { return 2, nil })
	if cached || v != 2 {
		t.Fatalf("expired entry served: %v %v", v, cached)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(8, time.Minute)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	v, cached, err := c.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || cached || v != "ok" {
		t.Fatalf("error was cached: %v %v %v", v, cached, err)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8, time.Minute)
	var loads atomic.Int32
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("hot", func() (any, error) {
				loads.Add(1)
				<-gate
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach Do before releasing the loader. A short
	// sleep is enough: stragglers that arrive later hit the cache instead,
	// which still means exactly one load.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(8, time.Hour)
	c.Do("k", func() (any, error) { return 1, nil })
	c.Invalidate("k")
	if _, cached, _ := c.Do("k", func() (any, error) { return 2, nil }); cached {
		t.Fatal("invalidated key still cached")
	}
	c.Invalidate("never-existed") // no-op
}

func TestCacheZeroMaxStillSingleflights(t *testing.T) {
	c := NewCache(0, time.Minute)
	c.Do("k", func() (any, error) { return 1, nil })
	if _, cached, _ := c.Do("k", func() (any, error) { return 2, nil }); cached {
		t.Fatal("max=0 cache stored an entry")
	}
}
