package core

import (
	"stalecert/internal/simtime"
	"stalecert/internal/stats"
)

// This file implements §6: estimating how shortening maximum certificate
// lifetimes would shrink the third-party stale-certificate population.

// StandardCaps are the lifetimes the paper simulates: 45 days, 90 days
// (Let's Encrypt / GTS / cPanel self-imposed), 215 days (six months plus
// operational padding), and the current 398-day browser limit.
var StandardCaps = []int{45, 90, 215, 398}

// CapResult is the outcome of re-simulating a stale population under one
// maximum-lifetime cap (Figure 9): certificates longer than the cap have
// their expiration pulled in to notBefore+cap; shorter certificates are
// untouched. Staleness days after the event are recomputed; a certificate
// whose capped expiry precedes its invalidation event stops being stale.
type CapResult struct {
	CapDays int
	// Original and capped totals.
	StaleCerts      int
	RemainingStale  int
	StalenessDays   int
	CappedStaleDays int
}

// StaleCertReductionPct is the share of stale certificates eliminated.
func (r CapResult) StaleCertReductionPct() float64 {
	if r.StaleCerts == 0 {
		return 0
	}
	return 100 * float64(r.StaleCerts-r.RemainingStale) / float64(r.StaleCerts)
}

// StalenessDayReductionPct is the share of staleness-days eliminated.
func (r CapResult) StalenessDayReductionPct() float64 {
	if r.StalenessDays == 0 {
		return 0
	}
	return 100 * float64(r.StalenessDays-r.CappedStaleDays) / float64(r.StalenessDays)
}

// SimulateCap applies one lifetime cap to a stale population.
func SimulateCap(stale []StaleCert, capDays int) CapResult {
	r := CapResult{CapDays: capDays, StaleCerts: len(stale)}
	for _, s := range stale {
		orig := s.StalenessDays()
		r.StalenessDays += orig
		notAfter := s.Cert.NotAfter
		if s.Cert.LifetimeDays() > capDays {
			notAfter = s.Cert.NotBefore + simtime.Day(capDays) - 1
		}
		capped := int(notAfter - s.EventDay + 1)
		if capped <= 0 {
			continue // event falls after the capped expiry: no longer stale
		}
		r.RemainingStale++
		r.CappedStaleDays += capped
	}
	return r
}

// SimulateCaps applies every cap.
func SimulateCaps(stale []StaleCert, caps []int) []CapResult {
	out := make([]CapResult, len(caps))
	for i, c := range caps {
		out[i] = SimulateCap(stale, c)
	}
	return out
}

// StalenessCDF builds the distribution of staleness periods (Figure 6 / 7).
func StalenessCDF(stale []StaleCert) *stats.CDF {
	c := &stats.CDF{}
	for _, s := range stale {
		c.AddInt(s.StalenessDays())
	}
	return c
}

// SurvivalCDF builds the distribution of days-from-issuance-to-event
// (Figure 8's underlying variable): its survival function at x is the
// proportion of eventually-stale certificates that had not yet become stale
// x days after issuance — the naive upper bound on stale certificates
// eliminated by an x-day lifetime.
func SurvivalCDF(stale []StaleCert) *stats.CDF {
	c := &stats.CDF{}
	for _, s := range stale {
		d := s.DaysFromIssuance()
		if d < 0 {
			d = 0
		}
		c.AddInt(d)
	}
	return c
}

// YearlyStalenessCDFs splits staleness distributions by event year
// (Figure 7).
func YearlyStalenessCDFs(stale []StaleCert) map[int]*stats.CDF {
	out := make(map[int]*stats.CDF)
	for _, s := range stale {
		y := s.EventDay.Year()
		c := out[y]
		if c == nil {
			c = &stats.CDF{}
			out[y] = c
		}
		c.AddInt(s.StalenessDays())
	}
	return out
}
