package core

import (
	"bytes"
	"reflect"
	"testing"

	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func TestCertStreamRoundTrip(t *testing.T) {
	var certs []*x509sim.Certificate
	for i := 0; i < 100; i++ {
		c, err := x509sim.New(x509sim.SerialNumber(i+1), 3, x509sim.KeyID(i),
			[]string{"a.com", "*.a.com"}, simtime.Day(i), simtime.Day(i+90))
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			c.Precert = true
		}
		certs = append(certs, c)
	}
	var buf bytes.Buffer
	if err := WriteCerts(&buf, certs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCerts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(certs, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestCertStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCerts(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCerts(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream = %v %v", got, err)
	}
}

func TestCertStreamErrors(t *testing.T) {
	if _, err := ReadCerts(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCerts(bytes.NewReader([]byte("notacorpusfile....."))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated body.
	c, _ := x509sim.New(1, 1, 1, []string{"a.com"}, 0, 1)
	var buf bytes.Buffer
	if err := WriteCerts(&buf, []*x509sim.Certificate{c}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadCerts(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupted count.
	bad := append([]byte(nil), raw...)
	bad[8] = 0xFF
	if _, err := ReadCerts(bytes.NewReader(bad)); err == nil {
		t.Error("implausible count accepted")
	}
}
