package core

import (
	"stalecert/internal/crl"
	"stalecert/internal/dnssim"
	"stalecert/internal/psl"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

// Index is the read surface the detection pipelines need: point lookups by
// CRL join key and by e2LD, plus full enumeration. Both the in-memory batch
// Corpus and the persistent certstore.Store implement it, so the batch
// (staled) and live (stalewatch, staleapid) paths share one index
// implementation — the tentpole invariant is that a detector gives the same
// verdict whichever backs it.
type Index interface {
	// ByKey resolves a CRL (issuer, serial) join key.
	ByKey(x509sim.DedupKey) (*x509sim.Certificate, bool)
	// ByE2LD returns every certificate naming an FQDN under the e2LD.
	// Implementations return a slice the caller may mutate.
	ByE2LD(domain string) []*x509sim.Certificate
	// Certs enumerates the indexed certificates.
	Certs() []*x509sim.Certificate
	// Len is the indexed certificate count.
	Len() int
	// PSL is the public suffix list names were bucketed with.
	PSL() *psl.List
}

// Compile-time check: the batch corpus satisfies the shared index surface.
var _ Index = (*Corpus)(nil)

// DomainEvidence is the event evidence for one e2LD's staleness query — the
// same three signal classes the batch detectors consume, restricted (or
// restrictable) to a single domain. A live query service fills it from
// point lookups (WHOIS query, DNS delegation check, CRL fetch); a batch
// harness passes the full event lists and lets DomainStaleness filter.
type DomainEvidence struct {
	// Revocations are CRL entries; joined against the domain's certificates
	// by (issuer, serial), so passing a full CRL set is fine.
	Revocations []crl.Entry
	// ReRegistrations are registrant-change events; only entries for the
	// queried domain apply.
	ReRegistrations []whois.ReRegistration
	// Departures are managed-TLS delegation losses; only entries for the
	// queried domain apply.
	Departures []dnssim.Departure
	// RevocationCutoff mirrors DetectRevoked's outlier filter; use
	// simtime.NoDay to disable.
	RevocationCutoff simtime.Day
	// IsManaged identifies provider-managed certificates for the departure
	// check; nil disables that method.
	IsManaged ManagedCertPred
}

// DomainStaleness runs the three detectors' per-domain logic for one e2LD
// against an index. It returns exactly the subset of the batch pipelines'
// output whose certificate names the domain: revocation staleness applies
// DetectRevoked's validity-window and cutoff filters (Domain stays empty, as
// in the batch path, because a revocation affects every name on the
// certificate); registrant-change and managed-departure events apply their
// batch validity checks. Results are in the detectors' canonical order.
func DomainStaleness(idx Index, domain string, ev DomainEvidence) []StaleCert {
	certs := idx.ByE2LD(domain)
	if len(certs) == 0 {
		return nil
	}
	var out []StaleCert

	if len(ev.Revocations) > 0 {
		inDomain := make(map[x509sim.DedupKey]bool, len(certs))
		for _, c := range certs {
			inDomain[c.DedupKey()] = true
		}
		for _, e := range ev.Revocations {
			if !inDomain[e.Key()] {
				continue
			}
			cert, ok := idx.ByKey(e.Key())
			if !ok {
				continue
			}
			switch {
			case e.RevokedAt < cert.NotBefore:
			case e.RevokedAt > cert.NotAfter:
			case ev.RevocationCutoff != simtime.NoDay && e.RevokedAt < ev.RevocationCutoff:
			default:
				out = append(out, StaleCert{
					Cert:     cert,
					Method:   MethodRevocation,
					EventDay: e.RevokedAt,
					Reason:   e.Reason,
				})
			}
		}
	}

	for _, rr := range ev.ReRegistrations {
		if rr.Domain != domain {
			continue
		}
		for _, cert := range certs {
			if cert.NotBefore < rr.NewCreation && rr.NewCreation < cert.NotAfter {
				out = append(out, StaleCert{
					Cert:     cert,
					Method:   MethodRegistrantChange,
					EventDay: rr.NewCreation,
					Domain:   rr.Domain,
				})
			}
		}
	}

	if ev.IsManaged != nil {
		for _, dep := range ev.Departures {
			if dep.Domain != domain {
				continue
			}
			for _, cert := range certs {
				if ev.IsManaged(cert) && cert.ValidOn(dep.FirstGone) {
					out = append(out, StaleCert{
						Cert:     cert,
						Method:   MethodManagedTLS,
						EventDay: dep.FirstGone,
						Domain:   dep.Domain,
					})
				}
			}
		}
	}

	sortStale(out)
	return out
}
