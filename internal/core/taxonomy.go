// Package core implements the paper's primary contribution: the certificate
// invalidation-event taxonomy (Tables 1–2), the three third-party
// stale-certificate detectors (key-compromise revocation, domain registrant
// change, managed-TLS departure — §4–5), the deduplicated CT corpus they
// join against, and the certificate-lifetime reduction analysis (§6).
package core

// InfoCategory is a certificate-information category (Table 1).
type InfoCategory uint8

// Table 1 categories.
const (
	SubscriberAuthentication InfoCategory = iota
	KeyAuthorization
	IssuerInformation
	CertificateMetadata
)

// String names the category.
func (c InfoCategory) String() string {
	switch c {
	case SubscriberAuthentication:
		return "Subscriber authentication"
	case KeyAuthorization:
		return "Key authorization"
	case IssuerInformation:
		return "Issuer information"
	case CertificateMetadata:
		return "Certificate metadata"
	}
	return "category?"
}

// InfoCategoryRow is one row of Table 1.
type InfoCategoryRow struct {
	Category    InfoCategory
	Description string
	Fields      []string
}

// Table1 is the certificate-information taxonomy.
var Table1 = []InfoCategoryRow{
	{SubscriberAuthentication, "Subscriber identifiers: domain + crypto. keys",
		[]string{"Subject Name", "SAN", "Subj. Public Key", "Subj. Key ID"}},
	{KeyAuthorization, "Permissions + constraints on key utilization",
		[]string{"Basic Constraints", "Key Usage", "Extended Key Usage"}},
	{IssuerInformation, "Details of CA that issued certificate",
		[]string{"Issuer Name", "Auth. Key ID", "Signature", "CRL Distribution Points", "Auth. Info. Access", "Certificate Policy"}},
	{CertificateMetadata, "Meta-information about the certificate itself",
		[]string{"Serial #", "Precert. Poison", "Signed Cert. Timestamps"}},
}

// Party identifies who controls a stale certificate's key after an
// invalidation event.
type Party uint8

// Controlling parties.
const (
	FirstParty Party = iota
	ThirdParty
)

// String names the party.
func (p Party) String() string {
	if p == FirstParty {
		return "First-party"
	}
	return "Third-party"
}

// InvalidationEvent is one row of Table 2: a class of real-world change that
// nullifies certificate information.
type InvalidationEvent struct {
	Name     string
	Category InfoCategory
	Example  string
	Party    Party
	// Impersonation marks events enabling TLS domain impersonation by the
	// controlling party.
	Impersonation bool
}

// Table2 is the certificate invalidation-event taxonomy. The three
// third-party impersonation rows are exactly the classes the detectors in
// this package measure.
var Table2 = []InvalidationEvent{
	{"Domain ownership change", SubscriberAuthentication, "Domain registrant change (§5.2)", ThirdParty, true},
	{"Domain use change", SubscriberAuthentication, "Domain expiration + no new owner", FirstParty, false},
	{"Key ownership change", SubscriberAuthentication, "Key compromise (§5.1)", ThirdParty, true},
	{"Key use change", SubscriberAuthentication, "Key disuse: e.g., rotation", FirstParty, false},
	{"Managed TLS departure", SubscriberAuthentication, "CDN/web-host migration (§5.3)", ThirdParty, true},
	{"Key authorization change", KeyAuthorization, "Key scope reduction", FirstParty, false},
	{"Revocation info. change", IssuerInformation, "CA infrastructure change", FirstParty, false},
}

// ThirdPartyEvents returns the impersonation-enabling event classes.
func ThirdPartyEvents() []InvalidationEvent {
	var out []InvalidationEvent
	for _, e := range Table2 {
		if e.Party == ThirdParty && e.Impersonation {
			out = append(out, e)
		}
	}
	return out
}
