package core

import (
	"sort"

	"stalecert/internal/crl"
	"stalecert/internal/dnssim"
	"stalecert/internal/obs"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

// Detector metrics, labelled by method slug: candidates examined, outliers
// filtered (with the filter reason), and stale certificates emitted.
func detectExamined(m Method) *obs.Counter {
	return obs.Default().Counter("detect_candidates_examined_total", "method", m.slug())
}

func detectFiltered(m Method, reason string) *obs.Counter {
	return obs.Default().Counter("detect_outliers_filtered_total", "method", m.slug(), "reason", reason)
}

func detectEmitted(m Method) *obs.Counter {
	return obs.Default().Counter("detect_stale_emitted_total", "method", m.slug())
}

// Method is a stale-certificate detection pipeline (the rows of Table 4).
type Method uint8

// Detection methods.
const (
	MethodRevocation       Method = iota // Revoked: all
	MethodKeyCompromise                  // Revoked: key compromise
	MethodRegistrantChange               // Domain registrant change
	MethodManagedTLS                     // Managed TLS departure
)

// String names the method as in Table 4.
func (m Method) String() string {
	switch m {
	case MethodRevocation:
		return "Revoked: all"
	case MethodKeyCompromise:
		return "Revoked: key compromise"
	case MethodRegistrantChange:
		return "Domain registrant change"
	case MethodManagedTLS:
		return "Managed TLS departure"
	}
	return "method?"
}

// slug is the metric-label form of the method name.
func (m Method) slug() string {
	switch m {
	case MethodRevocation:
		return "revocation"
	case MethodKeyCompromise:
		return "key_compromise"
	case MethodRegistrantChange:
		return "registrant_change"
	case MethodManagedTLS:
		return "managed_tls"
	}
	return "unknown"
}

// StaleCert is one detected stale certificate: a valid certificate whose
// subscriber information was nullified by an invalidation event on EventDay.
type StaleCert struct {
	Cert     *x509sim.Certificate
	Method   Method
	EventDay simtime.Day
	// Domain is the affected e2LD for domain-scoped events (registrant
	// change, managed TLS); empty for revocations, which affect every name.
	Domain string
	// Reason carries the revocation reason for revocation-based detections.
	Reason crl.Reason
}

// StalenessDays is the abusable window: event day through notAfter
// (inclusive), the paper's staleness period.
func (s StaleCert) StalenessDays() int {
	d := int(s.Cert.NotAfter - s.EventDay + 1)
	if d < 0 {
		return 0
	}
	return d
}

// DaysFromIssuance is how far into the certificate's life the invalidation
// event occurred (the Figure 8 survival variable).
func (s StaleCert) DaysFromIssuance() int {
	return int(s.EventDay - s.Cert.NotBefore)
}

// RevocationFilterCutoff is the paper's outlier filter: revocations before
// 2021-10-01 (13 months before CRL collection began) are discarded.
var RevocationFilterCutoff = simtime.MustParse("2021-10-01")

// RevocationStats accounts for the §4.1 filtering steps.
type RevocationStats struct {
	TotalRevocations   int // CRL entries seen
	MatchedInCT        int // joined against the corpus
	RevokedBeforeValid int
	RevokedAfterExpiry int
	BeforeCutoff       int
	Kept               int
}

// DetectRevoked joins CRL revocations against the CT corpus and applies the
// paper's outlier filters, returning every revocation-stale certificate
// (Method MethodRevocation, with key-compromise entries additionally
// duplicated under MethodKeyCompromise by callers that need the split —
// use SplitKeyCompromise).
func DetectRevoked(idx Index, entries []crl.Entry, cutoff simtime.Day) ([]StaleCert, RevocationStats) {
	stats := RevocationStats{TotalRevocations: len(entries)}
	examined := detectExamined(MethodRevocation)
	fNotInCT := detectFiltered(MethodRevocation, "not_in_ct")
	fBeforeValid := detectFiltered(MethodRevocation, "revoked_before_valid")
	fAfterExpiry := detectFiltered(MethodRevocation, "revoked_after_expiry")
	fBeforeCutoff := detectFiltered(MethodRevocation, "before_cutoff")
	emitted := detectEmitted(MethodRevocation)
	var out []StaleCert
	for _, e := range entries {
		examined.Inc()
		cert, ok := idx.ByKey(e.Key())
		if !ok {
			fNotInCT.Inc()
			continue // not in CT: cannot analyse (paper: cross-reference with CT)
		}
		stats.MatchedInCT++
		switch {
		case e.RevokedAt < cert.NotBefore:
			stats.RevokedBeforeValid++
			fBeforeValid.Inc()
			continue
		case e.RevokedAt > cert.NotAfter:
			stats.RevokedAfterExpiry++
			fAfterExpiry.Inc()
			continue
		case cutoff != simtime.NoDay && e.RevokedAt < cutoff:
			stats.BeforeCutoff++
			fBeforeCutoff.Inc()
			continue
		}
		stats.Kept++
		emitted.Inc()
		out = append(out, StaleCert{
			Cert:     cert,
			Method:   MethodRevocation,
			EventDay: e.RevokedAt,
			Reason:   e.Reason,
		})
	}
	sortStale(out)
	return out, stats
}

// SplitKeyCompromise extracts the key-compromise subset of revocation-stale
// certificates, relabelled under MethodKeyCompromise.
func SplitKeyCompromise(revoked []StaleCert) []StaleCert {
	examined := detectExamined(MethodKeyCompromise)
	emitted := detectEmitted(MethodKeyCompromise)
	var out []StaleCert
	for _, s := range revoked {
		examined.Inc()
		if s.Reason == crl.KeyCompromise {
			s.Method = MethodKeyCompromise
			out = append(out, s)
			emitted.Inc()
		}
	}
	return out
}

// DetectRegistrantChange finds certificates whose validity spans a public
// re-registration: notBefore < registryCreationDate < notAfter (§4.2). The
// prior registrant keeps the keys while the new registrant owns the domain.
func DetectRegistrantChange(idx Index, events []whois.ReRegistration) []StaleCert {
	examined := detectExamined(MethodRegistrantChange)
	fOutside := detectFiltered(MethodRegistrantChange, "outside_validity")
	emitted := detectEmitted(MethodRegistrantChange)
	var out []StaleCert
	for _, ev := range events {
		for _, cert := range idx.ByE2LD(ev.Domain) {
			examined.Inc()
			if cert.NotBefore < ev.NewCreation && ev.NewCreation < cert.NotAfter {
				emitted.Inc()
				out = append(out, StaleCert{
					Cert:     cert,
					Method:   MethodRegistrantChange,
					EventDay: ev.NewCreation,
					Domain:   ev.Domain,
				})
			} else {
				fOutside.Inc()
			}
		}
	}
	sortStale(out)
	return out
}

// ManagedCertPred reports whether a certificate is provider-managed (e.g.
// carries an sni*.cloudflaressl.com marker SAN).
type ManagedCertPred func(*x509sim.Certificate) bool

// DetectManagedTLSDeparture finds provider-managed certificates that are
// still valid when their customer domain's delegation to the provider
// disappears between consecutive daily scans (§4.3).
func DetectManagedTLSDeparture(idx Index, departures []dnssim.Departure, isManaged ManagedCertPred) []StaleCert {
	examined := detectExamined(MethodManagedTLS)
	fNotManaged := detectFiltered(MethodManagedTLS, "not_managed")
	fNotValid := detectFiltered(MethodManagedTLS, "not_valid")
	emitted := detectEmitted(MethodManagedTLS)
	var out []StaleCert
	for _, dep := range departures {
		for _, cert := range idx.ByE2LD(dep.Domain) {
			examined.Inc()
			if !isManaged(cert) {
				fNotManaged.Inc()
				continue
			}
			if cert.ValidOn(dep.FirstGone) {
				emitted.Inc()
				out = append(out, StaleCert{
					Cert:     cert,
					Method:   MethodManagedTLS,
					EventDay: dep.FirstGone,
					Domain:   dep.Domain,
				})
			} else {
				fNotValid.Inc()
			}
		}
	}
	sortStale(out)
	return out
}

func sortStale(s []StaleCert) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].EventDay != s[j].EventDay {
			return s[i].EventDay < s[j].EventDay
		}
		if s[i].Cert.Issuer != s[j].Cert.Issuer {
			return s[i].Cert.Issuer < s[j].Cert.Issuer
		}
		return s[i].Cert.Serial < s[j].Cert.Serial
	})
}

// Summary is one Table 4 row: distinct stale certificates, FQDNs, and e2LDs
// with average daily rates over the detection date range.
type Summary struct {
	Method Method
	Range  simtime.Span
	Certs  int
	FQDNs  int
	E2LDs  int
}

// Days returns the detection range length in days.
func (s Summary) Days() int { return s.Range.Len() }

// CertsPerDay returns the average daily stale-certificate rate.
func (s Summary) CertsPerDay() float64 { return perDay(s.Certs, s.Days()) }

// FQDNsPerDay returns the average daily stale-FQDN rate.
func (s Summary) FQDNsPerDay() float64 { return perDay(s.FQDNs, s.Days()) }

// E2LDsPerDay returns the average daily stale-e2LD rate.
func (s Summary) E2LDsPerDay() float64 { return perDay(s.E2LDs, s.Days()) }

func perDay(n, days int) float64 {
	if days == 0 {
		return 0
	}
	return float64(n) / float64(days)
}

// Summarize computes a Table 4 row over detections from one method.
// The span is [start, end) of the detection window.
func Summarize(idx Index, stale []StaleCert, method Method, window simtime.Span) Summary {
	certs := make(map[x509sim.Fingerprint]bool)
	fqdns := make(map[string]bool)
	e2lds := make(map[string]bool)
	for _, s := range stale {
		if s.Method != method {
			continue
		}
		certs[s.Cert.Fingerprint()] = true
		if s.Domain != "" {
			// Domain-scoped events: count names under the affected e2LD.
			e2lds[s.Domain] = true
			for _, n := range s.Cert.Names {
				base := trimWildcard(n)
				if e2, err := idx.PSL().ETLDPlusOne(base); err == nil && e2 == s.Domain {
					fqdns[base] = true
				}
			}
		} else {
			// Revocations: every name on the certificate is affected.
			for _, n := range s.Cert.Names {
				base := trimWildcard(n)
				fqdns[base] = true
				if e2, err := idx.PSL().ETLDPlusOne(base); err == nil {
					e2lds[e2] = true
				}
			}
		}
	}
	return Summary{Method: method, Range: window, Certs: len(certs), FQDNs: len(fqdns), E2LDs: len(e2lds)}
}

func trimWildcard(n string) string {
	if len(n) > 2 && n[0] == '*' && n[1] == '.' {
		return n[2:]
	}
	return n
}
