package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"stalecert/internal/x509sim"
)

// Corpus persistence: a length-framed stream of certificate encodings with a
// small header, so scraped corpora can be saved by cmd/ctscan and reloaded
// by analysis runs without re-scraping.

var corpusMagic = [8]byte{'s', 't', 'a', 'l', 'e', 'c', 'r', '1'}

// ErrBadCorpusFile marks a stream that is not a corpus dump.
var ErrBadCorpusFile = errors.New("core: not a corpus stream")

// WriteCerts writes a certificate stream to w.
func WriteCerts(w io.Writer, certs []*x509sim.Certificate) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(corpusMagic[:]); err != nil {
		return err
	}
	var count [8]byte
	binary.BigEndian.PutUint64(count[:], uint64(len(certs)))
	if _, err := bw.Write(count[:]); err != nil {
		return err
	}
	var frame [4]byte
	for _, c := range certs {
		enc := c.Marshal()
		binary.BigEndian.PutUint32(frame[:], uint32(len(enc)))
		if _, err := bw.Write(frame[:]); err != nil {
			return err
		}
		if _, err := bw.Write(enc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCerts reads a certificate stream written by WriteCerts.
func ReadCerts(r io.Reader) ([]*x509sim.Certificate, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCorpusFile, err)
	}
	if magic != corpusMagic {
		return nil, ErrBadCorpusFile
	}
	var count [8]byte
	if _, err := io.ReadFull(br, count[:]); err != nil {
		return nil, fmt.Errorf("core: corpus count: %w", err)
	}
	n := binary.BigEndian.Uint64(count[:])
	const maxCerts = 1 << 28
	if n > maxCerts {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadCorpusFile, n)
	}
	certs := make([]*x509sim.Certificate, 0, min(n, 1<<20))
	var frame [4]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return nil, fmt.Errorf("core: cert %d frame: %w", i, err)
		}
		l := binary.BigEndian.Uint32(frame[:])
		if l > 1<<16 {
			return nil, fmt.Errorf("%w: cert %d oversized (%d bytes)", ErrBadCorpusFile, i, l)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("core: cert %d body: %w", i, err)
		}
		c, err := x509sim.Unmarshal(buf)
		if err != nil {
			return nil, fmt.Errorf("core: cert %d: %w", i, err)
		}
		certs = append(certs, c)
	}
	return certs, nil
}
