package core

import (
	"sort"

	"stalecert/internal/psl"
	"stalecert/internal/x509sim"
)

// MaxCertsPerFQDN is the paper's anomaly filter: FQDNs carrying more than 3K
// certificates are test domains or anomalous issuance and are excluded from
// analysis (§4).
const MaxCertsPerFQDN = 3000

// Corpus is the deduplicated, indexed CT certificate corpus the detectors
// join against. Build once with NewCorpus; read-only afterwards.
type Corpus struct {
	psl   *psl.List
	certs []*x509sim.Certificate

	byKey  map[x509sim.DedupKey]*x509sim.Certificate
	byE2LD map[string][]*x509sim.Certificate

	// ExcludedFQDNs counts domains dropped by the MaxCertsPerFQDN filter.
	ExcludedFQDNs int
	// Deduped counts raw inputs removed as fingerprint duplicates.
	Deduped int
}

// CorpusOptions tunes corpus construction.
type CorpusOptions struct {
	// PSL defaults to psl.Default().
	PSL *psl.List
	// MaxPerFQDN defaults to MaxCertsPerFQDN; set negative to disable.
	MaxPerFQDN int
	// NoIndex skips the e2LD inverted index; lookups then scan linearly.
	// Exists for the ablation benchmark.
	NoIndex bool
}

// NewCorpus builds a corpus from certificates (already CT-deduplicated
// inputs are fine; fingerprint dedup is idempotent).
func NewCorpus(certs []*x509sim.Certificate, opts CorpusOptions) *Corpus {
	if opts.PSL == nil {
		opts.PSL = psl.Default()
	}
	if opts.MaxPerFQDN == 0 {
		opts.MaxPerFQDN = MaxCertsPerFQDN
	}
	c := &Corpus{
		psl:   opts.PSL,
		byKey: make(map[x509sim.DedupKey]*x509sim.Certificate, len(certs)),
	}

	// Fingerprint dedup.
	seen := make(map[x509sim.Fingerprint]bool, len(certs))
	deduped := make([]*x509sim.Certificate, 0, len(certs))
	for _, cert := range certs {
		fp := cert.Fingerprint()
		if seen[fp] {
			c.Deduped++
			continue
		}
		seen[fp] = true
		deduped = append(deduped, cert)
	}

	// FQDN anomaly filter.
	if opts.MaxPerFQDN > 0 {
		perFQDN := make(map[string]int)
		for _, cert := range deduped {
			for _, n := range cert.Names {
				perFQDN[n]++
			}
		}
		banned := make(map[string]bool)
		for n, count := range perFQDN {
			if count > opts.MaxPerFQDN {
				banned[n] = true
				c.ExcludedFQDNs++
			}
		}
		if len(banned) > 0 {
			kept := deduped[:0]
			for _, cert := range deduped {
				drop := false
				for _, n := range cert.Names {
					if banned[n] {
						drop = true
						break
					}
				}
				if !drop {
					kept = append(kept, cert)
				}
			}
			deduped = kept
		}
	}

	c.certs = deduped
	for _, cert := range deduped {
		c.byKey[cert.DedupKey()] = cert
	}
	if !opts.NoIndex {
		c.byE2LD = make(map[string][]*x509sim.Certificate)
		for _, cert := range deduped {
			for _, e2 := range c.certE2LDs(cert) {
				c.byE2LD[e2] = append(c.byE2LD[e2], cert)
			}
		}
	}
	return c
}

// CertE2LDs returns the distinct e2LDs covered by a certificate's SANs,
// sorted. It is the one e2LD-extraction rule shared by the corpus and the
// persistent certstore index, so batch and live paths bucket names
// identically.
func CertE2LDs(list *psl.List, cert *x509sim.Certificate) []string {
	var out []string
	seen := make(map[string]bool, len(cert.Names))
	for _, n := range cert.Names {
		base := n
		if len(base) > 2 && base[0] == '*' {
			base = base[2:]
		}
		e2, err := list.ETLDPlusOne(base)
		if err != nil {
			continue
		}
		if !seen[e2] {
			seen[e2] = true
			out = append(out, e2)
		}
	}
	sort.Strings(out)
	return out
}

// certE2LDs returns the distinct e2LDs covered by a certificate's SANs.
func (c *Corpus) certE2LDs(cert *x509sim.Certificate) []string {
	return CertE2LDs(c.psl, cert)
}

// E2LDsOf exposes certE2LDs for analyses.
func (c *Corpus) E2LDsOf(cert *x509sim.Certificate) []string { return c.certE2LDs(cert) }

// Len returns the corpus size after dedup and filtering.
func (c *Corpus) Len() int { return len(c.certs) }

// Certs returns the corpus contents (shared slice; do not mutate).
func (c *Corpus) Certs() []*x509sim.Certificate { return c.certs }

// ByKey resolves a CRL (issuer, serial) join key.
func (c *Corpus) ByKey(key x509sim.DedupKey) (*x509sim.Certificate, bool) {
	cert, ok := c.byKey[key]
	return cert, ok
}

// ByE2LD returns every certificate naming an FQDN under the given e2LD.
// With NoIndex it scans the corpus (the ablation baseline). The returned
// slice is a defensive copy: callers may sort or filter it in place without
// corrupting the shared index.
func (c *Corpus) ByE2LD(domain string) []*x509sim.Certificate {
	if c.byE2LD != nil {
		certs := c.byE2LD[domain]
		if len(certs) == 0 {
			return nil
		}
		out := make([]*x509sim.Certificate, len(certs))
		copy(out, certs)
		return out
	}
	var out []*x509sim.Certificate
	for _, cert := range c.certs {
		for _, e2 := range c.certE2LDs(cert) {
			if e2 == domain {
				out = append(out, cert)
				break
			}
		}
	}
	return out
}

// PSL returns the corpus's public suffix list.
func (c *Corpus) PSL() *psl.List { return c.psl }
