package core

import (
	"testing"

	"stalecert/internal/crl"
	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

func cert(t *testing.T, serial uint64, names []string, nb, na simtime.Day) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(x509sim.SerialNumber(serial), 1, x509sim.KeyID(serial), names, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTaxonomyTables(t *testing.T) {
	if len(Table1) != 4 {
		t.Fatalf("Table 1 rows = %d", len(Table1))
	}
	if len(Table2) != 7 {
		t.Fatalf("Table 2 rows = %d", len(Table2))
	}
	tp := ThirdPartyEvents()
	if len(tp) != 3 {
		t.Fatalf("third-party impersonation events = %d, want 3", len(tp))
	}
	for _, e := range tp {
		if e.Category != SubscriberAuthentication {
			t.Fatalf("third-party event %q in category %v", e.Name, e.Category)
		}
	}
}

func TestCorpusDedupAndIndex(t *testing.T) {
	a := cert(t, 1, []string{"a.com", "www.a.com"}, 0, 100)
	dup := a.Clone()
	b := cert(t, 2, []string{"b.com", "*.b.com"}, 0, 100)
	c := NewCorpus([]*x509sim.Certificate{a, dup, b}, CorpusOptions{})
	if c.Len() != 2 || c.Deduped != 1 {
		t.Fatalf("len=%d deduped=%d", c.Len(), c.Deduped)
	}
	if got := c.ByE2LD("a.com"); len(got) != 1 || got[0].Serial != 1 {
		t.Fatalf("ByE2LD(a.com) = %v", got)
	}
	if got := c.ByE2LD("b.com"); len(got) != 1 {
		t.Fatalf("ByE2LD(b.com) = %v", got)
	}
	if _, ok := c.ByKey(a.DedupKey()); !ok {
		t.Fatal("ByKey miss")
	}
	// NoIndex fallback returns the same results.
	noIdx := NewCorpus([]*x509sim.Certificate{a, b}, CorpusOptions{NoIndex: true})
	if got := noIdx.ByE2LD("a.com"); len(got) != 1 {
		t.Fatalf("NoIndex ByE2LD = %v", got)
	}
}

func TestCorpusFQDNCapFilter(t *testing.T) {
	var certs []*x509sim.Certificate
	for i := 0; i < 10; i++ {
		certs = append(certs, cert(t, uint64(i+1), []string{"spam.com"}, simtime.Day(i), simtime.Day(i+10)))
	}
	certs = append(certs, cert(t, 100, []string{"ok.com"}, 0, 10))
	c := NewCorpus(certs, CorpusOptions{MaxPerFQDN: 5})
	if c.Len() != 1 || c.ExcludedFQDNs != 1 {
		t.Fatalf("len=%d excluded=%d", c.Len(), c.ExcludedFQDNs)
	}
	if len(c.ByE2LD("spam.com")) != 0 {
		t.Fatal("banned FQDN still indexed")
	}
}

func TestDetectRevokedFilters(t *testing.T) {
	valid := cert(t, 1, []string{"a.com"}, 100, 200)
	early := cert(t, 2, []string{"b.com"}, 100, 200)
	late := cert(t, 3, []string{"c.com"}, 100, 200)
	old := cert(t, 4, []string{"d.com"}, 100, 20000)
	corpus := NewCorpus([]*x509sim.Certificate{valid, early, late, old}, CorpusOptions{})

	cutoff := simtime.Day(3000)
	entries := []crl.Entry{
		{Issuer: 1, Serial: 1, RevokedAt: 3150, Reason: crl.KeyCompromise},
		{Issuer: 1, Serial: 2, RevokedAt: 50, Reason: crl.Superseded},   // before valid
		{Issuer: 1, Serial: 3, RevokedAt: 250, Reason: crl.Superseded},  // after expiry
		{Issuer: 1, Serial: 4, RevokedAt: 2999, Reason: crl.Superseded}, // before cutoff
		{Issuer: 1, Serial: 99, RevokedAt: 150, Reason: crl.Superseded}, // not in CT
	}
	// Make the first cert's revocation valid relative to its life.
	valid.NotBefore, valid.NotAfter = 3100, 3400

	stale, stats := DetectRevoked(corpus, entries, cutoff)
	if stats.TotalRevocations != 5 || stats.MatchedInCT != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.RevokedBeforeValid != 1 || stats.RevokedAfterExpiry != 1 || stats.BeforeCutoff != 1 || stats.Kept != 1 {
		t.Fatalf("filter stats = %+v", stats)
	}
	if len(stale) != 1 || stale[0].Cert.Serial != 1 {
		t.Fatalf("stale = %+v", stale)
	}
	if stale[0].StalenessDays() != int(3400-3150+1) {
		t.Fatalf("staleness = %d", stale[0].StalenessDays())
	}
	kc := SplitKeyCompromise(stale)
	if len(kc) != 1 || kc[0].Method != MethodKeyCompromise {
		t.Fatalf("kc = %+v", kc)
	}
}

func TestDetectRegistrantChange(t *testing.T) {
	spans := cert(t, 1, []string{"flip.com", "www.flip.com"}, 100, 400)
	before := cert(t, 2, []string{"flip.com"}, 10, 90)     // expired before change
	after := cert(t, 3, []string{"flip.com"}, 300, 600)    // issued after change
	other := cert(t, 4, []string{"other.com"}, 100, 400)   // unrelated
	boundary := cert(t, 5, []string{"flip.com"}, 200, 500) // notBefore == event: excluded (strict)
	corpus := NewCorpus([]*x509sim.Certificate{spans, before, after, other, boundary}, CorpusOptions{})

	events := []whois.ReRegistration{{Domain: "flip.com", NewCreation: 200, PrevCreation: 50}}
	stale := DetectRegistrantChange(corpus, events)
	if len(stale) != 1 {
		t.Fatalf("stale = %+v", stale)
	}
	s := stale[0]
	if s.Cert.Serial != 1 || s.Domain != "flip.com" || s.EventDay != 200 {
		t.Fatalf("stale[0] = %+v", s)
	}
	if s.StalenessDays() != 201 { // 400-200+1
		t.Fatalf("staleness = %d", s.StalenessDays())
	}
}

func TestDetectRegistrantChangeCoversSubdomainCerts(t *testing.T) {
	sub := cert(t, 1, []string{"shop.flip.com"}, 100, 400)
	corpus := NewCorpus([]*x509sim.Certificate{sub}, CorpusOptions{})
	stale := DetectRegistrantChange(corpus, []whois.ReRegistration{{Domain: "flip.com", NewCreation: 200}})
	if len(stale) != 1 {
		t.Fatal("subdomain cert not matched to e2LD re-registration")
	}
}

func TestDetectManagedTLSDeparture(t *testing.T) {
	managed := cert(t, 1, []string{"sni1.cloudflaressl.com", "leave.com", "*.leave.com"}, 100, 400)
	uploaded := cert(t, 2, []string{"leave.com"}, 100, 400)                          // customer-uploaded: no marker
	expired := cert(t, 3, []string{"sni2.cloudflaressl.com", "leave.com"}, 10, 150)  // expired before departure
	otherDom := cert(t, 4, []string{"sni3.cloudflaressl.com", "stay.com"}, 100, 400) // different domain
	corpus := NewCorpus([]*x509sim.Certificate{managed, uploaded, expired, otherDom}, CorpusOptions{})

	isManaged := func(c *x509sim.Certificate) bool {
		for _, n := range c.Names {
			if len(n) > 3 && n[:3] == "sni" {
				return true
			}
		}
		return false
	}
	deps := []dnssim.Departure{{Domain: "leave.com", LastSeen: 200, FirstGone: 201}}
	stale := DetectManagedTLSDeparture(corpus, deps, isManaged)
	if len(stale) != 1 || stale[0].Cert.Serial != 1 {
		t.Fatalf("stale = %+v", stale)
	}
	if stale[0].StalenessDays() != 200 { // 400-201+1
		t.Fatalf("staleness = %d", stale[0].StalenessDays())
	}
}

func TestSummarize(t *testing.T) {
	c1 := cert(t, 1, []string{"a.com", "www.a.com", "b.com"}, 0, 100)
	c2 := cert(t, 2, []string{"www.a.com"}, 0, 100)
	corpus := NewCorpus([]*x509sim.Certificate{c1, c2}, CorpusOptions{})
	stale := []StaleCert{
		{Cert: c1, Method: MethodRegistrantChange, EventDay: 50, Domain: "a.com"},
		{Cert: c2, Method: MethodRegistrantChange, EventDay: 50, Domain: "a.com"},
		{Cert: c1, Method: MethodRevocation, EventDay: 50},
	}
	window := simtime.Span{Start: 0, End: 100}
	reg := Summarize(corpus, stale, MethodRegistrantChange, window)
	// Domain-scoped: only names under a.com count.
	if reg.Certs != 2 || reg.E2LDs != 1 || reg.FQDNs != 2 {
		t.Fatalf("registrant summary = %+v", reg)
	}
	if reg.CertsPerDay() != 0.02 {
		t.Fatalf("certs/day = %v", reg.CertsPerDay())
	}
	rev := Summarize(corpus, stale, MethodRevocation, window)
	// Revocation-scoped: every SAN counts; e2LDs a.com and b.com.
	if rev.Certs != 1 || rev.FQDNs != 3 || rev.E2LDs != 2 {
		t.Fatalf("revocation summary = %+v", rev)
	}
}

func TestSimulateCap(t *testing.T) {
	// Cert: 365-day lifetime, event at day 100 of its life.
	c1 := cert(t, 1, []string{"a.com"}, 0, 364)
	// Cert: 90-day lifetime, event at day 30.
	c2 := cert(t, 2, []string{"b.com"}, 0, 89)
	stale := []StaleCert{
		{Cert: c1, Method: MethodRegistrantChange, EventDay: 100, Domain: "a.com"},
		{Cert: c2, Method: MethodRegistrantChange, EventDay: 30, Domain: "b.com"},
	}
	r := SimulateCap(stale, 90)
	// Original staleness: (364-100+1)=265 and (89-30+1)=60 → 325.
	if r.StalenessDays != 325 {
		t.Fatalf("orig staleness = %d", r.StalenessDays)
	}
	// Capped: c1's notAfter becomes 89 < event 100 → eliminated; c2 unchanged.
	if r.RemainingStale != 1 || r.CappedStaleDays != 60 {
		t.Fatalf("capped = %+v", r)
	}
	if r.StaleCertReductionPct() != 50 {
		t.Fatalf("cert reduction = %v", r.StaleCertReductionPct())
	}
	want := 100 * float64(325-60) / 325
	if got := r.StalenessDayReductionPct(); got != want {
		t.Fatalf("day reduction = %v, want %v", got, want)
	}
}

func TestSimulateCapsMonotone(t *testing.T) {
	var stale []StaleCert
	for i := 0; i < 50; i++ {
		lifetime := 90 + (i%4)*100
		c := cert(t, uint64(i+1), []string{"m.com"}, simtime.Day(i*10), simtime.Day(i*10+lifetime-1))
		event := c.NotBefore + simtime.Day(lifetime/3)
		stale = append(stale, StaleCert{Cert: c, Method: MethodRegistrantChange, EventDay: event, Domain: "m.com"})
	}
	results := SimulateCaps(stale, StandardCaps)
	for i := 1; i < len(results); i++ {
		if results[i].CappedStaleDays < results[i-1].CappedStaleDays {
			t.Fatalf("staleness days not monotone in cap: %+v", results)
		}
	}
	if results[0].CapDays != 45 || results[len(results)-1].CapDays != 398 {
		t.Fatal("StandardCaps wrong")
	}
}

func TestStalenessAndSurvivalCDFs(t *testing.T) {
	c1 := cert(t, 1, []string{"a.com"}, 0, 99)
	stale := []StaleCert{
		{Cert: c1, EventDay: 10},
		{Cert: c1, EventDay: 50},
		{Cert: c1, EventDay: 90},
	}
	s := StalenessCDF(stale)
	if s.N() != 3 || s.Median() != 50 { // 100-50
		t.Fatalf("staleness CDF median = %v", s.Median())
	}
	surv := SurvivalCDF(stale)
	if got := surv.SurvivalAt(45); got < 2.0/3-1e-9 || got > 2.0/3+1e-9 {
		t.Fatalf("survival(45) = %v", got)
	}
	byYear := YearlyStalenessCDFs(stale)
	if len(byYear) != 1 || byYear[2013] == nil {
		t.Fatalf("yearly CDFs = %v", byYear)
	}
}

func TestMethodStrings(t *testing.T) {
	names := map[Method]string{
		MethodRevocation:       "Revoked: all",
		MethodKeyCompromise:    "Revoked: key compromise",
		MethodRegistrantChange: "Domain registrant change",
		MethodManagedTLS:       "Managed TLS departure",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d = %q", m, m.String())
		}
	}
}
