package core
