package core

import (
	"fmt"
	"sort"
	"testing"

	"stalecert/internal/crl"
	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

func domCert(t *testing.T, serial uint64, names []string, nb, na simtime.Day) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(x509sim.SerialNumber(serial), x509sim.IssuerID(serial%3+1), x509sim.KeyID(serial), names, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func domKey(s StaleCert) string {
	return fmt.Sprintf("%s/%d/%d/%d/%s", s.Cert.Fingerprint(), s.Method, s.EventDay, s.Reason, s.Domain)
}

// TestDomainStalenessMatchesBatchDetectors is the shared-index invariant:
// for every domain, the per-domain query logic must return exactly the
// batch pipelines' verdicts restricted to that domain.
func TestDomainStalenessMatchesBatchDetectors(t *testing.T) {
	managed := func(c *x509sim.Certificate) bool {
		for _, n := range c.Names {
			if len(n) > 3 && n[:3] == "sni" {
				return true
			}
		}
		return false
	}
	certs := []*x509sim.Certificate{
		domCert(t, 1, []string{"alpha.com", "www.alpha.com"}, 100, 900),
		domCert(t, 2, []string{"alpha.com"}, 200, 400), // expires before some events
		domCert(t, 3, []string{"beta.org"}, 100, 900),
		domCert(t, 4, []string{"gamma.net", "sni7.cloudflaressl.com"}, 100, 900),
		domCert(t, 5, []string{"delta.com"}, 100, 900),
	}
	corpus := NewCorpus(certs, CorpusOptions{})

	revs := []crl.Entry{
		{Issuer: certs[0].Issuer, Serial: 1, RevokedAt: 500, Reason: crl.KeyCompromise},
		{Issuer: certs[1].Issuer, Serial: 2, RevokedAt: 500, Reason: crl.Unspecified}, // after expiry: filtered
		{Issuer: certs[2].Issuer, Serial: 3, RevokedAt: 50, Reason: crl.Unspecified},  // before notBefore: filtered
		{Issuer: certs[4].Issuer, Serial: 5, RevokedAt: 120, Reason: crl.Superseded},  // before cutoff when set
	}
	rereg := []whois.ReRegistration{
		{Domain: "alpha.com", NewCreation: 300, PrevCreation: 10},
		{Domain: "beta.org", NewCreation: 950, PrevCreation: 10}, // outside validity
	}
	deps := []dnssim.Departure{
		{Domain: "gamma.net", LastSeen: 599, FirstGone: 600},
		{Domain: "delta.com", LastSeen: 599, FirstGone: 600}, // not managed: filtered
	}

	for _, cutoff := range []simtime.Day{simtime.NoDay, 200} {
		var batch []StaleCert
		revoked, _ := DetectRevoked(corpus, revs, cutoff)
		batch = append(batch, revoked...)
		batch = append(batch, DetectRegistrantChange(corpus, rereg)...)
		batch = append(batch, DetectManagedTLSDeparture(corpus, deps, managed)...)

		ev := DomainEvidence{
			Revocations:      revs,
			ReRegistrations:  rereg,
			Departures:       deps,
			RevocationCutoff: cutoff,
			IsManaged:        managed,
		}
		for _, domain := range []string{"alpha.com", "beta.org", "gamma.net", "delta.com", "cloudflaressl.com", "unknown.io"} {
			inDomain := map[x509sim.Fingerprint]bool{}
			for _, c := range corpus.ByE2LD(domain) {
				inDomain[c.Fingerprint()] = true
			}
			var want []string
			for _, s := range batch {
				if s.Method == MethodRevocation && inDomain[s.Cert.Fingerprint()] ||
					s.Method != MethodRevocation && s.Domain == domain {
					want = append(want, domKey(s))
				}
			}
			var got []string
			for _, s := range DomainStaleness(corpus, domain, ev) {
				got = append(got, domKey(s))
			}
			sort.Strings(want)
			sort.Strings(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("cutoff %v domain %s: got %v want %v", cutoff, domain, got, want)
			}
		}
	}
}

func TestDomainStalenessNilIsManagedDisablesDepartures(t *testing.T) {
	certs := []*x509sim.Certificate{domCert(t, 4, []string{"gamma.net", "sni7.cloudflaressl.com"}, 100, 900)}
	corpus := NewCorpus(certs, CorpusOptions{})
	out := DomainStaleness(corpus, "gamma.net", DomainEvidence{
		Departures:       []dnssim.Departure{{Domain: "gamma.net", FirstGone: 600}},
		RevocationCutoff: simtime.NoDay,
	})
	if len(out) != 0 {
		t.Fatalf("departures detected without IsManaged: %v", out)
	}
}

// TestByE2LDDefensiveCopy guards the index against caller mutation — the
// returned slice must not share backing storage with the inverted index.
func TestByE2LDDefensiveCopy(t *testing.T) {
	certs := []*x509sim.Certificate{
		domCert(t, 1, []string{"copy.com"}, 100, 900),
		domCert(t, 2, []string{"copy.com"}, 100, 900),
	}
	corpus := NewCorpus(certs, CorpusOptions{})
	got := corpus.ByE2LD("copy.com")
	if len(got) != 2 {
		t.Fatalf("ByE2LD = %d certs", len(got))
	}
	got[0], got[1] = nil, nil
	again := corpus.ByE2LD("copy.com")
	if len(again) != 2 || again[0] == nil || again[1] == nil {
		t.Fatal("caller mutation corrupted the shared e2LD index")
	}
	if corpus.ByE2LD("missing.com") != nil {
		t.Fatal("miss should return nil")
	}
}
