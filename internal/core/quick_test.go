package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stalecert/internal/crl"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

// Property tests on detector invariants over randomly generated populations.

func randomCorpus(rng *rand.Rand, n int) ([]*x509sim.Certificate, *Corpus) {
	certs := make([]*x509sim.Certificate, 0, n)
	for i := 0; i < n; i++ {
		nb := simtime.Day(rng.Intn(2000))
		lifetime := 30 + rng.Intn(800)
		domain := string(rune('a'+rng.Intn(6))) + "dom.com"
		c, err := x509sim.New(
			x509sim.SerialNumber(i+1), x509sim.IssuerID(rng.Intn(3)+1), x509sim.KeyID(i+1),
			[]string{domain, "www." + domain}, nb, nb+simtime.Day(lifetime-1))
		if err != nil {
			panic(err)
		}
		certs = append(certs, c)
	}
	return certs, NewCorpus(certs, CorpusOptions{})
}

func TestQuickRegistrantChangeInvariants(t *testing.T) {
	f := func(seed int64, nEvents uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		_, corpus := randomCorpus(rng, 150)
		var events []whois.ReRegistration
		for i := 0; i < int(nEvents)%20+1; i++ {
			events = append(events, whois.ReRegistration{
				Domain:      string(rune('a'+rng.Intn(6))) + "dom.com",
				NewCreation: simtime.Day(rng.Intn(2500)),
			})
		}
		stale := DetectRegistrantChange(corpus, events)
		for _, s := range stale {
			// The defining condition, strictly.
			if !(s.Cert.NotBefore < s.EventDay && s.EventDay < s.Cert.NotAfter) {
				return false
			}
			// Staleness is always positive and bounded by the lifetime.
			if s.StalenessDays() < 1 || s.StalenessDays() > s.Cert.LifetimeDays() {
				return false
			}
			// The cert actually names the domain.
			covers := false
			for _, n := range s.Cert.Names {
				if n == s.Domain || n == "www."+s.Domain {
					covers = true
				}
			}
			if !covers {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickRevocationInvariants(t *testing.T) {
	f := func(seed int64, nRev uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		certs, corpus := randomCorpus(rng, 150)
		var entries []crl.Entry
		for i := 0; i < int(nRev)%40+1; i++ {
			c := certs[rng.Intn(len(certs))]
			entries = append(entries, crl.Entry{
				Issuer:    c.Issuer,
				Serial:    c.Serial,
				RevokedAt: simtime.Day(rng.Intn(3000)),
				Reason:    crl.Reason(rng.Intn(11)),
			})
		}
		stale, stats := DetectRevoked(corpus, entries, simtime.NoDay)
		if stats.Kept != len(stale) {
			return false
		}
		for _, s := range stale {
			// Revocation fell inside validity (the §4.1 filters).
			if s.EventDay < s.Cert.NotBefore || s.EventDay > s.Cert.NotAfter {
				return false
			}
			if s.StalenessDays() < 1 {
				return false
			}
		}
		// Key-compromise split preserves count of matching reasons.
		kc := SplitKeyCompromise(stale)
		want := 0
		for _, s := range stale {
			if s.Reason == crl.KeyCompromise {
				want++
			}
		}
		return len(kc) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickCapNeverIncreasesStaleness(t *testing.T) {
	f := func(seed int64, capSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		certs, _ := randomCorpus(rng, 60)
		var stale []StaleCert
		for _, c := range certs {
			event := c.NotBefore + simtime.Day(rng.Intn(c.LifetimeDays()))
			stale = append(stale, StaleCert{Cert: c, Method: MethodRegistrantChange, EventDay: event, Domain: "x.com"})
		}
		capDays := int(capSeed)%400 + 10
		r := SimulateCap(stale, capDays)
		if r.CappedStaleDays > r.StalenessDays {
			return false
		}
		if r.RemainingStale > r.StaleCerts {
			return false
		}
		// A cap at least as long as every lifetime changes nothing.
		huge := SimulateCap(stale, 10000)
		return huge.CappedStaleDays == huge.StalenessDays && huge.RemainingStale == huge.StaleCerts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickSurvivalCDFBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		certs, _ := randomCorpus(rng, 40)
		var stale []StaleCert
		for _, c := range certs {
			event := c.NotBefore + simtime.Day(rng.Intn(c.LifetimeDays()))
			stale = append(stale, StaleCert{Cert: c, EventDay: event})
		}
		surv := SurvivalCDF(stale)
		last := 1.1
		for x := 0.0; x <= 900; x += 30 {
			v := surv.SurvivalAt(x)
			if v < 0 || v > 1 || v > last {
				return false // survival must be a non-increasing [0,1] function
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
