package loadgen

import "testing"

func TestZipfDeterministic(t *testing.T) {
	a, err := NewZipf(42, 1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewZipf(42, 1000, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		av, bv := a.Next(), b.Next()
		if av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
		if av < 0 || av >= 1000 {
			t.Fatalf("draw %d out of range: %d", i, av)
		}
	}
}

func TestZipfDifferentSeedsDiverge(t *testing.T) {
	a, _ := NewZipf(1, 1000, 1.1)
	b, _ := NewZipf(2, 1000, 1.1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestZipfDistribution checks the generator actually skews: with s=1.0 over
// 100 ranks, rank 0's share must approximate 1/H(100) ≈ 0.193 and dominate
// rank 50 by more than an order of magnitude.
func TestZipfDistribution(t *testing.T) {
	z, err := NewZipf(7, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	share0 := float64(counts[0]) / draws
	if share0 < 0.17 || share0 > 0.22 {
		t.Errorf("rank 0 share %.3f, want ≈ 0.193", share0)
	}
	if counts[0] < 10*counts[50] {
		t.Errorf("rank 0 (%d) should dominate rank 50 (%d) by >10x", counts[0], counts[50])
	}
	for r, c := range counts {
		if c == 0 && r < 50 {
			t.Errorf("rank %d never drawn in %d draws", r, draws)
		}
	}
}

// TestZipfSubOneExponent covers the s <= 1 range math/rand's Zipf rejects.
func TestZipfSubOneExponent(t *testing.T) {
	z, err := NewZipf(3, 50, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 50)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[49] {
		t.Errorf("rank 0 (%d) should still beat rank 49 (%d) at s=0.8", counts[0], counts[49])
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(1, 0, 1.1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(1, 10, 0); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewZipf(1, 10, -1); err == nil {
		t.Error("s<0 accepted")
	}
}
