package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The server section is additive on schema v1: a BENCH file written before
// server-side deltas existed must still read (with Server nil), a report
// carrying one must round-trip it, and a run without -target-metrics must
// not serialize the key at all.
func TestBenchReportServerSideAdditive(t *testing.T) {
	legacy := `{
  "schema_version": 1,
  "scenario": "steady",
  "git_sha": "3d4cc30",
  "timestamp": "2026-08-07T00:00:00Z",
  "config": {"mode": "open", "target_qps": 200, "workers": 16, "duration_s": 15,
             "seed": 1, "zipf_s": 1.1, "zipf_n": 120, "mix": "staleness:40,cert:50,getentries:10"},
  "totals": {"requests": 10, "errors": 0, "error_rate": 0, "bytes": 100, "qps": 1,
             "latency": {"p50_ms": 1, "p90_ms": 1, "p99_ms": 1, "p999_ms": 1, "max_ms": 1, "mean_ms": 1}},
  "endpoints": {"cert": {"requests": 10, "errors": 0, "error_rate": 0, "bytes": 100, "qps": 1,
             "latency": {"p50_ms": 1, "p90_ms": 1, "p99_ms": 1, "p999_ms": 1, "max_ms": 1, "mean_ms": 1}}},
  "dropped": 0
}`
	path := filepath.Join(t.TempDir(), "BENCH_steady_3d4cc30.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(path)
	if err != nil {
		t.Fatalf("pre-server BENCH file no longer reads: %v", err)
	}
	if rep.Server != nil {
		t.Fatalf("legacy report grew a server section: %+v", rep.Server)
	}

	rep.Server = &ServerSide{Requests: 2960, Errors: 3, P50Ms: 0.4, P99Ms: 2.1}
	rep.Timestamp = time.Now().UTC()
	out, err := rep.WriteReport(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Server == nil || *back.Server != *rep.Server {
		t.Fatalf("server section lost on round-trip: %+v", back.Server)
	}

	rep.Server = nil
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	_ = json.Unmarshal(data, &m)
	if _, present := m["server"]; present {
		t.Error(`report without target metrics serializes "server"; omitempty broken`)
	}
}
