package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The topology fields (gateway, shards, replicas) are additive on schema
// v1: a BENCH file written before sharding or replication existed must
// still read and validate, and a gateway point must round-trip its
// topology.
func TestBenchConfigTopologyAdditive(t *testing.T) {
	legacy := `{
  "schema_version": 1,
  "scenario": "steady",
  "git_sha": "a8636b0",
  "timestamp": "2026-08-01T00:00:00Z",
  "config": {"mode": "open", "target_qps": 200, "workers": 16, "duration_s": 15,
             "seed": 1, "zipf_s": 1.1, "zipf_n": 120, "mix": "staleness:40,cert:50,getentries:10"},
  "totals": {"requests": 10, "errors": 0, "error_rate": 0, "bytes": 100, "qps": 1,
             "latency": {"p50_ms": 1, "p90_ms": 1, "p99_ms": 1, "p999_ms": 1, "max_ms": 1, "mean_ms": 1}},
  "endpoints": {"staleness": {"requests": 10, "errors": 0, "error_rate": 0, "bytes": 100, "qps": 1,
             "latency": {"p50_ms": 1, "p90_ms": 1, "p99_ms": 1, "p999_ms": 1, "max_ms": 1, "mean_ms": 1}}},
  "dropped": 0
}`
	path := filepath.Join(t.TempDir(), "BENCH_steady_a8636b0.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(path)
	if err != nil {
		t.Fatalf("pre-sharding BENCH file no longer reads: %v", err)
	}
	if rep.Config.Gateway || rep.Config.Shards != 0 || rep.Config.Replicas != 0 {
		t.Fatalf("legacy config grew topology: %+v", rep.Config)
	}

	// A gateway point keeps its topology through write/read, and a direct
	// point's JSON stays free of the new keys (byte-stable configs).
	rep.Config.Gateway = true
	rep.Config.Shards = 3
	rep.Config.Replicas = 2
	rep.Timestamp = time.Now().UTC()
	out, err := rep.WriteReport(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Config.Gateway || back.Config.Shards != 3 || back.Config.Replicas != 2 {
		t.Fatalf("topology lost on round-trip: %+v", back.Config)
	}

	direct, err := json.Marshal(BenchConfig{Mode: "open"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"gateway", "shards", "replicas"} {
		var m map[string]any
		_ = json.Unmarshal(direct, &m)
		if _, present := m[key]; present {
			t.Errorf("direct run config serializes %q; omitempty broken", key)
		}
	}
}
