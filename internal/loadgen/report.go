package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"time"
)

// BenchSchemaVersion identifies the BENCH_*.json layout; bump it on any
// incompatible change so trajectory tooling can refuse to mix shapes.
const BenchSchemaVersion = 1

// LatencySummary is the quantile digest recorded per endpoint, in
// milliseconds (floats survive JSON without unit ambiguity at this scale).
type LatencySummary struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// EndpointReport is one operation's slice of a bench run.
type EndpointReport struct {
	Requests  uint64         `json:"requests"`
	Errors    uint64         `json:"errors"`
	ErrorRate float64        `json:"error_rate"`
	Bytes     int64          `json:"bytes"`
	QPS       float64        `json:"qps"`
	Latency   LatencySummary `json:"latency"`
}

// BenchConfig records the knobs that produced a run — two BENCH files are
// comparable only when their configs match.
type BenchConfig struct {
	Mode      string  `json:"mode"`
	TargetQPS float64 `json:"target_qps"`
	Workers   int     `json:"workers"`
	DurationS float64 `json:"duration_s"`
	Seed      uint64  `json:"seed"`
	ZipfS     float64 `json:"zipf_s"`
	ZipfN     int     `json:"zipf_n"`
	Mix       string  `json:"mix"`
	// Gateway/Shards record the target topology when the run went through a
	// stalegw fleet rather than a single staleapid. Both are additive,
	// omitempty fields: schema v1 files written before sharding existed
	// still parse, and direct single-daemon runs keep byte-identical
	// configs. A gateway point and a direct point are NOT comparable.
	Gateway bool `json:"gateway,omitempty"`
	Shards  int  `json:"shards,omitempty"`
	// Replicas records replicas per slice for a replicated gateway fleet
	// (0/absent = unreplicated or pre-replication file). Additive like
	// Gateway/Shards; a 2x1 and a 2x2 point are NOT comparable.
	Replicas int `json:"replicas,omitempty"`
}

// ServerSide is the target's own view of the run: deltas of its /metrics
// counters scraped immediately before and after the measured window. The
// client-side numbers include queueing and the network; these do not — the
// gap between the two p99s is where the time went. Server quantiles come
// from histogram bucket deltas, so they carry bucket resolution, not sample
// resolution.
type ServerSide struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// BenchReport is the BENCH_<scenario>_<git-sha>.json document: one point on
// the repo's performance trajectory.
type BenchReport struct {
	SchemaVersion int                       `json:"schema_version"`
	Scenario      string                    `json:"scenario"`
	GitSHA        string                    `json:"git_sha"`
	Timestamp     time.Time                 `json:"timestamp"`
	Config        BenchConfig               `json:"config"`
	Totals        EndpointReport            `json:"totals"`
	Endpoints     map[string]EndpointReport `json:"endpoints"`
	// Dropped counts open-loop tickets never dispatched (generator
	// overload); a comparable run has 0.
	Dropped uint64 `json:"dropped"`
	// Server holds the target-side metric deltas when the run was driven
	// with -target-metrics. Additive, omitempty on schema v1: files written
	// before it existed still parse, and runs without the flag keep
	// byte-identical reports.
	Server *ServerSide `json:"server,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func summarize(st *OpStats, elapsed time.Duration) EndpointReport {
	rep := EndpointReport{
		Requests: st.Count,
		Errors:   st.Errors,
		Bytes:    st.Bytes,
		Latency: LatencySummary{
			P50Ms:  ms(st.Latency.Quantile(0.50)),
			P90Ms:  ms(st.Latency.Quantile(0.90)),
			P99Ms:  ms(st.Latency.Quantile(0.99)),
			P999Ms: ms(st.Latency.Quantile(0.999)),
			MaxMs:  ms(st.Latency.Max()),
			MeanMs: ms(st.Latency.Mean()),
		},
	}
	if st.Count > 0 {
		rep.ErrorRate = float64(st.Errors) / float64(st.Count)
	}
	if elapsed > 0 {
		rep.QPS = float64(st.Count) / elapsed.Seconds()
	}
	return rep
}

// BuildReport digests a finished run into the BENCH document.
func BuildReport(res *Result, scenario, gitSHA, mix string, zipfS float64, zipfN int) *BenchReport {
	rep := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Scenario:      scenario,
		GitSHA:        gitSHA,
		Timestamp:     res.Began.UTC(),
		Config: BenchConfig{
			Mode:      string(res.Config.Mode),
			TargetQPS: res.Config.QPS,
			Workers:   res.Config.Workers,
			DurationS: res.Config.Duration.Seconds(),
			Seed:      res.Config.Seed,
			ZipfS:     zipfS,
			ZipfN:     zipfN,
			Mix:       mix,
		},
		Totals:    summarize(res.Total, res.Elapsed),
		Endpoints: make(map[string]EndpointReport, len(res.PerOp)),
		Dropped:   res.Dropped,
	}
	for name, st := range res.PerOp {
		rep.Endpoints[name] = summarize(st, res.Elapsed)
	}
	return rep
}

var benchNameSafe = regexp.MustCompile(`[^a-zA-Z0-9.-]+`)

// BenchFileName renders the canonical trajectory file name for a scenario
// and git SHA: BENCH_<scenario>_<sha>.json.
func BenchFileName(scenario, gitSHA string) string {
	clean := func(s, fallback string) string {
		s = benchNameSafe.ReplaceAllString(s, "-")
		if s == "" {
			return fallback
		}
		return s
	}
	return fmt.Sprintf("BENCH_%s_%s.json", clean(scenario, "run"), clean(gitSHA, "dev"))
}

// WriteReport writes the report to dir under its canonical name and returns
// the path.
func (r *BenchReport) WriteReport(dir string) (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	path := filepath.Join(dir, BenchFileName(r.Scenario, r.GitSHA))
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("loadgen: marshal bench report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("loadgen: write bench report: %w", err)
	}
	return path, nil
}

// Validate checks the report is a well-formed trajectory point.
func (r *BenchReport) Validate() error {
	switch {
	case r.SchemaVersion != BenchSchemaVersion:
		return fmt.Errorf("loadgen: bench schema version %d (want %d)", r.SchemaVersion, BenchSchemaVersion)
	case r.Scenario == "":
		return fmt.Errorf("loadgen: bench report without scenario")
	case r.GitSHA == "":
		return fmt.Errorf("loadgen: bench report without git SHA")
	case r.Timestamp.IsZero():
		return fmt.Errorf("loadgen: bench report without timestamp")
	case len(r.Endpoints) == 0:
		return fmt.Errorf("loadgen: bench report without endpoints")
	}
	return nil
}

// ReadReport loads and validates a BENCH_*.json file.
func ReadReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return &r, nil
}
