// Package loadgen is the stdlib-only load-generation toolkit behind
// cmd/staleload: a deterministic seeded Zipf key-rank generator (real query
// traffic concentrates on a small hot set of domains), a coordinated-
// omission-resistant HDR-style latency histogram, an open/closed-loop
// request runner, and the versioned BENCH_*.json report every run appends to
// the repo's performance trajectory.
package loadgen

import (
	"fmt"
	"math"
	"sort"
)

// splitmix64 is the PRNG used throughout the package: tiny, fast, and —
// unlike math/rand internals — fully specified here, so a seed reproduces
// the identical request sequence on every platform and Go version.
type splitmix64 struct{ state uint64 }

func newSplitmix64(seed uint64) *splitmix64 { return &splitmix64{state: seed} }

// next returns the next 64 pseudo-random bits.
func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64v returns a uniform float in [0, 1).
func (s *splitmix64) float64v() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0, n).
func (s *splitmix64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// Zipf draws ranks 0..N-1 with probability proportional to 1/(rank+1)^S —
// rank 0 is the hottest key. Unlike math/rand's Zipf it accepts any exponent
// S > 0 (web traffic is typically S ≈ 0.9–1.1, below math/rand's s > 1
// floor) and is deterministic across Go releases: the CDF is precomputed and
// inverted by binary search over draws from an in-package splitmix64.
type Zipf struct {
	rng *splitmix64
	cdf []float64 // cdf[i] = P(rank <= i), cdf[n-1] == 1
}

// NewZipf builds a generator over n ranks with exponent s, seeded
// deterministically.
func NewZipf(seed uint64, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: zipf needs n > 0, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("loadgen: zipf needs exponent > 0, got %v", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	return &Zipf{rng: newSplitmix64(seed), cdf: cdf}, nil
}

// N returns the rank universe size.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws the next rank in [0, N).
func (z *Zipf) Next() int {
	u := z.rng.float64v()
	return sort.SearchFloat64s(z.cdf, u)
}
