package loadgen

import (
	"math"
	"math/bits"
	"time"
)

// Hist is an HDR-style log-linear latency histogram: values (nanoseconds)
// are bucketed into 64 linear sub-buckets per power of two, which bounds the
// relative quantile error at ~1.6% across the full range — microsecond cache
// hits and multi-second stalls share one compact array. Unlike a fixed
// bucket list it never saturates: any int64 value lands in a real bucket.
//
// Hist is not safe for concurrent use; the runner gives each worker its own
// and merges them at the end, keeping the record path allocation- and
// contention-free.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	max    int64
	min    int64
}

const (
	// histSubBits buckets each power of two into 2^histSubBits linear
	// sub-buckets (64 → ≤ 1/64 relative width).
	histSubBits = 6
	histSub     = 1 << histSubBits
	// 64-bit values span at most 64-histSubBits "exponent rows" above the
	// dense linear first row.
	histBuckets = (64 - histSubBits) * histSub
)

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{min: -1} }

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSub {
		return int(v) // first row is exact: 0..63ns
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v), >= histSubBits
	sub := int(v>>(uint(exp)-histSubBits)) & (histSub - 1)
	return (exp-histSubBits+1)*histSub + sub
}

// histLower returns the inclusive lower bound of bucket i; values in bucket
// i satisfy lower <= v < histLower(i+1).
func histLower(i int) int64 {
	row := i / histSub
	sub := i % histSub
	if row == 0 {
		return int64(sub)
	}
	exp := uint(row - 1 + histSubBits)
	return (int64(histSub) + int64(sub)) << (exp - histSubBits)
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
	if h.min < 0 || v < h.min {
		h.min = v
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if other.min >= 0 && (h.min < 0 || other.min < h.min) {
		h.min = other.min
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the arithmetic mean (0 when empty).
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the value at quantile q in [0, 1] by the nearest-rank
// definition (the ceil(q*count)-th smallest observation): the midpoint of
// the bucket holding that observation, within the bucket's ~1.6% relative
// width of the true order statistic.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	target := rank - 1
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			lo := histLower(i)
			hi := h.max
			if i+1 < histBuckets {
				hi = histLower(i + 1)
			}
			mid := lo + (hi-lo)/2
			if mid > h.max {
				mid = h.max // never report beyond the observed maximum
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.max)
}
