package loadgen

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunClosedLoopCounts(t *testing.T) {
	var calls, fails atomic.Uint64
	cfg := Config{
		Mode:     ModeClosed,
		Duration: 200 * time.Millisecond,
		Workers:  4,
		Seed:     1,
		Ops: []Op{
			{Name: "ok", Weight: 3, Do: func(context.Context) (int64, error) {
				calls.Add(1)
				return 10, nil
			}},
			{Name: "bad", Weight: 1, Do: func(context.Context) (int64, error) {
				fails.Add(1)
				return 0, errors.New("boom")
			}},
		},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Count != calls.Load()+fails.Load() {
		t.Errorf("total count %d != executed %d", res.Total.Count, calls.Load()+fails.Load())
	}
	if res.Total.Errors != fails.Load() {
		t.Errorf("errors %d != failing op calls %d", res.Total.Errors, fails.Load())
	}
	if res.PerOp["ok"].Bytes != int64(calls.Load())*10 {
		t.Errorf("bytes %d, want %d", res.PerOp["ok"].Bytes, calls.Load()*10)
	}
	// The 3:1 mix should hold roughly over thousands of fast calls.
	okN, badN := float64(res.PerOp["ok"].Count), float64(res.PerOp["bad"].Count)
	if ratio := okN / (okN + badN); ratio < 0.65 || ratio > 0.85 {
		t.Errorf("mix ratio %.2f, want ≈ 0.75", ratio)
	}
	if res.ErrorRate() == 0 {
		t.Error("error rate should be non-zero")
	}
	if res.AchievedQPS == 0 {
		t.Error("achieved QPS should be non-zero")
	}
}

// TestRunOpenLoopSchedulesLatency checks coordinated-omission resistance:
// with one worker, a 50ms handler, and a 100 QPS schedule, queued requests
// must record latency from their scheduled start — far above the 50ms a
// closed-loop measurement would report.
func TestRunOpenLoopSchedulesLatency(t *testing.T) {
	cfg := Config{
		Mode:     ModeOpen,
		QPS:      100,
		Duration: 500 * time.Millisecond,
		Workers:  1,
		Seed:     1,
		Ops: []Op{{Name: "slow", Weight: 1, Do: func(context.Context) (int64, error) {
			time.Sleep(50 * time.Millisecond)
			return 0, nil
		}}},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Count < 5 {
		t.Fatalf("too few requests completed: %d", res.Total.Count)
	}
	// The single worker serves ~20 QPS against a 100 QPS schedule; by the
	// later requests the backlog-inflated latency far exceeds service time.
	if maxLat := res.Total.Latency.Max(); maxLat < 150*time.Millisecond {
		t.Errorf("max recorded latency %v; want backlog-inflated latency >> 50ms service time", maxLat)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("no ops accepted")
	}
	if _, err := Run(context.Background(), Config{Mode: ModeOpen, Ops: []Op{{Name: "x", Weight: 1, Do: func(context.Context) (int64, error) { return 0, nil }}}}); err == nil {
		t.Error("open loop without QPS accepted")
	}
	if _, err := Run(context.Background(), Config{Mode: "weird", QPS: 1, Ops: []Op{{Name: "x", Weight: 1, Do: func(context.Context) (int64, error) { return 0, nil }}}}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	cfg := Config{
		Mode:     ModeClosed,
		Duration: 50 * time.Millisecond,
		Workers:  2,
		Seed:     9,
		Ops: []Op{{Name: "staleness", Weight: 1, Do: func(context.Context) (int64, error) {
			return 42, nil
		}}},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(res, "unit-test", "abc1234", "staleness=1", 1.1, 100)
	dir := t.TempDir()
	path, err := rep.WriteReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_unit-test_abc1234.json" {
		t.Errorf("unexpected file name %s", filepath.Base(path))
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Totals.Requests != res.Total.Count || back.Scenario != "unit-test" ||
		back.SchemaVersion != BenchSchemaVersion {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if _, ok := back.Endpoints["staleness"]; !ok {
		t.Error("per-endpoint breakdown lost in round trip")
	}
	if back.Totals.QPS == 0 {
		t.Error("QPS should be non-zero")
	}
}

func TestBenchFileNameSanitises(t *testing.T) {
	got := BenchFileName("api smoke/v1", "de ad#be")
	if strings.ContainsAny(got, " /#") {
		t.Errorf("unsafe characters survive: %q", got)
	}
	if got != "BENCH_api-smoke-v1_de-ad-be.json" {
		t.Errorf("got %q", got)
	}
}

func TestReadReportRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "BENCH_bad_x.json")
	if err := os.WriteFile(p, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(p); err == nil {
		t.Error("wrong schema version accepted")
	}
}
