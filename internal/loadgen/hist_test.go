package loadgen

import (
	"math"
	"testing"
	"time"
)

// TestHistQuantileUniform feeds a known uniform distribution (1µs..100ms in
// 1µs steps) and checks the recovered quantiles land within the histogram's
// ~1.6% relative bucket width of the exact order statistics.
func TestHistQuantileUniform(t *testing.T) {
	h := NewHist()
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50000 * time.Microsecond},
		{0.90, 90000 * time.Microsecond},
		{0.99, 99000 * time.Microsecond},
		{0.999, 99900 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		relErr := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if relErr > 0.02 {
			t.Errorf("q%.3f = %v, want ≈ %v (rel err %.3f)", tc.q, got, tc.want, relErr)
		}
	}
	if h.Max() != 100000*time.Microsecond {
		t.Errorf("max = %v, want 100ms", h.Max())
	}
	wantMean := time.Duration((n + 1) / 2 * int64(time.Microsecond))
	if diff := h.Mean() - wantMean; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("mean = %v, want ≈ %v", h.Mean(), wantMean)
	}
}

// TestHistQuantileBimodal models a cache-hit/cache-miss split: 99% of
// observations at ~100µs, 1% at ~300ms. p50 must report the fast mode and
// p999 the slow one — the shape the fixed DurationBuckets default blurs.
func TestHistQuantileBimodal(t *testing.T) {
	h := NewHist()
	for i := 0; i < 9900; i++ {
		h.Record(100 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		h.Record(300 * time.Millisecond)
	}
	if p50 := h.Quantile(0.50); p50 > 110*time.Microsecond {
		t.Errorf("p50 = %v, want ≈ 100µs", p50)
	}
	if p999 := h.Quantile(0.999); p999 < 290*time.Millisecond {
		t.Errorf("p999 = %v, want ≈ 300ms", p999)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := 0; i < 1000; i++ {
		a.Record(time.Millisecond)
		b.Record(10 * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d, want 2000", a.Count())
	}
	if p50 := a.Quantile(0.50); p50 > 2*time.Millisecond {
		t.Errorf("merged p50 = %v, want ≈ 1ms", p50)
	}
	if p99 := a.Quantile(0.99); p99 < 9*time.Millisecond {
		t.Errorf("merged p99 = %v, want ≈ 10ms", p99)
	}
	if a.Max() != 10*time.Millisecond {
		t.Errorf("merged max = %v, want 10ms", a.Max())
	}
}

func TestHistEmptyAndEdge(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Record(0)
	h.Record(-5) // clamped to 0
	if h.Count() != 2 || h.Quantile(1) != 0 {
		t.Errorf("zero-value records mishandled: count=%d q1=%v", h.Count(), h.Quantile(1))
	}
}

// TestHistBucketInvariant checks index/lower-bound consistency across the
// whole range: every value must land in a bucket whose bounds contain it.
func TestHistBucketInvariant(t *testing.T) {
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1e6, 1e9, 1e12, math.MaxInt64 / 2} {
		i := histIndex(v)
		lo := histLower(i)
		if v < lo {
			t.Errorf("value %d below its bucket's lower bound %d (bucket %d)", v, lo, i)
		}
		if i+1 < histBuckets {
			if hi := histLower(i + 1); v >= hi {
				t.Errorf("value %d at/above next bucket's lower bound %d (bucket %d)", v, hi, i)
			}
		}
	}
}
