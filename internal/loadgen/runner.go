package loadgen

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Op is one weighted operation in a workload mix. Do performs a single
// request and returns the response payload size; a non-nil error counts the
// request as failed (its latency is still recorded).
type Op struct {
	Name   string
	Weight float64
	Do     func(ctx context.Context) (bytes int64, err error)
}

// Mode selects the load-generation discipline.
type Mode string

// Load-generation modes.
const (
	// ModeOpen issues requests on a fixed schedule at the target QPS
	// regardless of completions, and measures each latency from the
	// request's *scheduled* start — a stalled server inflates the recorded
	// latency of every queued request instead of silently pausing the
	// generator (coordinated-omission resistance, as in wrk2/HdrHistogram).
	ModeOpen Mode = "open"
	// ModeClosed runs Workers loops back-to-back: each worker issues its
	// next request as soon as the previous completes. Latency is the bare
	// request duration; achieved QPS floats with server speed.
	ModeClosed Mode = "closed"
)

// Config parameterises one load run.
type Config struct {
	Ops      []Op
	Mode     Mode
	QPS      float64       // open-loop target rate (ignored when closed)
	Duration time.Duration // wall-clock run length
	Workers  int           // concurrent request slots
	Seed     uint64        // drives the op mix; same seed → same op sequence
	// WarmupFrac discards the leading fraction of the run from the recorded
	// stats (connection setup, cold caches). Default 0.
	WarmupFrac float64
}

// OpStats accumulates one operation's outcomes.
type OpStats struct {
	Name    string
	Count   uint64
	Errors  uint64
	Bytes   int64
	Latency *Hist
}

// Result is one finished load run.
type Result struct {
	Config      Config
	Began       time.Time
	Elapsed     time.Duration
	PerOp       map[string]*OpStats
	Total       *OpStats // all ops merged
	AchievedQPS float64
	// Dropped counts open-loop requests whose scheduled start was never
	// picked up before the run ended (generator overload).
	Dropped uint64
}

// ErrorRate returns failed/total (0 when no requests ran).
func (r *Result) ErrorRate() float64 {
	if r.Total.Count == 0 {
		return 0
	}
	return float64(r.Total.Errors) / float64(r.Total.Count)
}

// workerState is the per-worker accumulator merged after the run.
type workerState struct {
	perOp map[string]*OpStats
}

func newWorkerState(ops []Op) *workerState {
	ws := &workerState{perOp: make(map[string]*OpStats, len(ops))}
	for _, op := range ops {
		ws.perOp[op.Name] = &OpStats{Name: op.Name, Latency: NewHist()}
	}
	return ws
}

// Run executes the configured load against the ops until Duration elapses or
// ctx is canceled. The op sequence is deterministic in Seed; wall-clock
// latencies are, of course, whatever the target produces.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Ops) == 0 {
		return nil, fmt.Errorf("loadgen: no ops configured")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeOpen
	}
	if cfg.Mode == ModeOpen && cfg.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop mode needs a target QPS")
	}
	totalWeight := 0.0
	for _, op := range cfg.Ops {
		if op.Weight < 0 {
			return nil, fmt.Errorf("loadgen: op %q has negative weight", op.Name)
		}
		totalWeight += op.Weight
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("loadgen: op weights sum to zero")
	}

	// pickOp inverts the cumulative weight distribution; each request draws
	// its op from a shared seeded stream so the mix is deterministic.
	cum := make([]float64, len(cfg.Ops))
	acc := 0.0
	for i, op := range cfg.Ops {
		acc += op.Weight / totalWeight
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	pickOp := func(u float64) *Op {
		return &cfg.Ops[sort.SearchFloat64s(cum, u)]
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration+5*time.Second)
	defer cancel()

	began := time.Now()
	deadline := began.Add(cfg.Duration)
	warmupUntil := began.Add(time.Duration(cfg.WarmupFrac * float64(cfg.Duration)))

	states := make([]*workerState, cfg.Workers)
	var wg sync.WaitGroup
	var dropped uint64

	execute := func(ws *workerState, op *Op, scheduled time.Time) {
		reqStart := time.Now()
		bytes, err := op.Do(runCtx)
		end := time.Now()
		if end.Before(warmupUntil) {
			return
		}
		lat := end.Sub(reqStart)
		if !scheduled.IsZero() {
			// Open loop: latency includes the time the request spent waiting
			// past its scheduled start for a free worker.
			lat = end.Sub(scheduled)
		}
		st := ws.perOp[op.Name]
		st.Count++
		st.Bytes += bytes
		st.Latency.Record(lat)
		if err != nil {
			st.Errors++
		}
	}

	switch cfg.Mode {
	case ModeOpen:
		type ticket struct {
			op        *Op
			scheduled time.Time
		}
		// The queue holds every not-yet-started request; sizing it for the
		// whole run means a stalled server queues tickets (whose eventual
		// latency is measured from the schedule) rather than blocking the
		// dispatcher.
		capacity := int(cfg.QPS*cfg.Duration.Seconds()) + cfg.Workers
		queue := make(chan ticket, capacity)
		for i := 0; i < cfg.Workers; i++ {
			ws := newWorkerState(cfg.Ops)
			states[i] = ws
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range queue {
					if runCtx.Err() != nil {
						return
					}
					execute(ws, t.op, t.scheduled)
				}
			}()
		}
		interval := time.Duration(float64(time.Second) / cfg.QPS)
		mixRng := newSplitmix64(cfg.Seed)
		for next := began; next.Before(deadline) && runCtx.Err() == nil; next = next.Add(interval) {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			select {
			case queue <- ticket{op: pickOp(mixRng.float64v()), scheduled: next}:
			default:
				dropped++
			}
		}
		close(queue)
	case ModeClosed:
		for i := 0; i < cfg.Workers; i++ {
			ws := newWorkerState(cfg.Ops)
			states[i] = ws
			// Per-worker seed: deterministic, and workers draw independent
			// op streams.
			mixRng := newSplitmix64(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) && runCtx.Err() == nil {
					execute(ws, pickOp(mixRng.float64v()), time.Time{})
				}
			}()
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}

	wg.Wait()
	elapsed := time.Since(began)

	res := &Result{
		Config:  cfg,
		Began:   began,
		Elapsed: elapsed,
		PerOp:   make(map[string]*OpStats, len(cfg.Ops)),
		Total:   &OpStats{Name: "total", Latency: NewHist()},
		Dropped: dropped,
	}
	for _, op := range cfg.Ops {
		merged := &OpStats{Name: op.Name, Latency: NewHist()}
		for _, ws := range states {
			st := ws.perOp[op.Name]
			merged.Count += st.Count
			merged.Errors += st.Errors
			merged.Bytes += st.Bytes
			merged.Latency.Merge(st.Latency)
		}
		res.PerOp[op.Name] = merged
		res.Total.Count += merged.Count
		res.Total.Errors += merged.Errors
		res.Total.Bytes += merged.Bytes
		res.Total.Latency.Merge(merged.Latency)
	}
	if elapsed > 0 {
		res.AchievedQPS = float64(res.Total.Count) / elapsed.Seconds()
	}
	return res, nil
}
