// Package psl implements public-suffix-list matching: given a DNS name it
// determines the effective TLD (public suffix) and the effective second-level
// domain (e2LD, the registerable domain). The paper aggregates every
// measurement by e2LD, so this package sits under all three detectors.
//
// The matcher implements the canonical PSL algorithm
// (https://publicsuffix.org/list/): normal rules, wildcard rules ("*.ck"),
// and exception rules ("!www.ck"); when several rules match, the one with the
// most labels prevails, and exceptions beat everything. Names that match no
// rule fall back to the implicit "*" rule (last label is the suffix).
package psl

import (
	"bufio"
	"errors"
	"fmt"
	"strings"

	"stalecert/internal/dnsname"
)

// Rule kinds.
const (
	ruleNormal = iota
	ruleWildcard
	ruleException
)

// List is an immutable compiled public suffix list. The zero value matches
// nothing but the implicit rule; use New or Default.
type List struct {
	// rules maps the rule's domain part (without "*." or "!") to its kind.
	rules map[string]uint8
}

// Errors returned by ETLDPlusOne.
var (
	ErrIsSuffix = errors.New("psl: name is itself a public suffix")
	ErrBadName  = errors.New("psl: malformed name")
)

// New compiles a list from PSL-format rules. Comment lines ("//") and blank
// lines are ignored so a raw PSL snapshot can be passed directly.
func New(lines []string) (*List, error) {
	l := &List{rules: make(map[string]uint8, len(lines))}
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		kind := uint8(ruleNormal)
		switch {
		case strings.HasPrefix(line, "!"):
			kind = ruleException
			line = line[1:]
		case strings.HasPrefix(line, "*."):
			kind = ruleWildcard
			line = line[2:]
		}
		line = dnsname.Canonical(line)
		if err := dnsname.Check(line, false); err != nil {
			return nil, fmt.Errorf("psl: rule %q: %w", line, err)
		}
		l.rules[line] = kind
	}
	return l, nil
}

// Parse compiles a list from a PSL-format text blob.
func Parse(text string) (*List, error) {
	var lines []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return New(lines)
}

// defaultSnapshot is a compact PSL snapshot covering the suffixes the
// simulator issues under, plus representative wildcard/exception rules so the
// matcher's corner cases stay exercised in every run.
const defaultSnapshot = `
// generic TLDs
com
net
org
info
biz
io
dev
app
xyz
online
site
shop
// country codes
us
uk
co.uk
org.uk
ac.uk
de
fr
nl
jp
co.jp
ne.jp
au
com.au
net.au
br
com.br
cn
com.cn
in
co.in
ru
// wildcard + exception examples (real PSL entries)
*.ck
!www.ck
*.bd
`

var defaultList = mustParse(defaultSnapshot)

func mustParse(text string) *List {
	l, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return l
}

// Default returns the embedded snapshot list shared by the whole simulator.
func Default() *List { return defaultList }

// PublicSuffix returns the effective TLD of name per the PSL algorithm.
// name must be canonical. The result is never empty for a non-empty name.
func (l *List) PublicSuffix(name string) string {
	bestLen := -1 // label count of prevailing rule match
	best := ""
	exception := false
	// Walk suffixes of name from shortest ("com") to longest.
	for s := lastLabel(name); s != ""; s = extend(name, s) {
		kind, ok := l.rules[s]
		if !ok {
			continue
		}
		switch kind {
		case ruleException:
			// Exception rule: public suffix is one label shorter.
			return dnsname.Parent(s)
		case ruleNormal:
			if n := dnsname.CountLabels(s); n > bestLen && !exception {
				bestLen, best = n, s
			}
		case ruleWildcard:
			// "*.s" matches one extra label below s.
			if w := oneBelow(name, s); w != "" {
				if n := dnsname.CountLabels(w); n > bestLen && !exception {
					bestLen, best = n, w
				}
			} else if n := dnsname.CountLabels(s); n > bestLen && !exception {
				// name IS the wildcard base; base itself acts as a suffix.
				bestLen, best = n, s
			}
		}
	}
	if best == "" {
		return lastLabel(name) // implicit "*" rule
	}
	return best
}

// ETLDPlusOne returns the effective second-level domain of name: the public
// suffix plus one label. It errors when the name is itself a public suffix.
func (l *List) ETLDPlusOne(name string) (string, error) {
	if name == "" {
		return "", ErrBadName
	}
	suffix := l.PublicSuffix(name)
	if name == suffix {
		return "", ErrIsSuffix
	}
	if !dnsname.IsSubdomain(name, suffix) {
		return "", fmt.Errorf("%w: %q not under suffix %q", ErrBadName, name, suffix)
	}
	return oneBelow(name, suffix), nil
}

// IsPublicSuffix reports whether name is exactly a public suffix.
func (l *List) IsPublicSuffix(name string) bool {
	return name != "" && l.PublicSuffix(name) == name
}

// lastLabel returns the final label of name.
func lastLabel(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// extend returns the suffix of name one label longer than cur, or "" when
// cur is already the whole name.
func extend(name, cur string) string {
	if name == cur {
		return ""
	}
	rest := name[:len(name)-len(cur)-1] // strip ".cur"
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		return rest[i+1:] + "." + cur
	}
	return rest + "." + cur
}

// oneBelow returns the suffix of name exactly one label longer than base, or
// "" when name == base or name is not under base.
func oneBelow(name, base string) string {
	if name == base || !dnsname.IsSubdomain(name, base) {
		return ""
	}
	rest := name[:len(name)-len(base)-1]
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		return rest[i+1:] + "." + base
	}
	return rest + "." + base
}
