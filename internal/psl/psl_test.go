package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffixBasic(t *testing.T) {
	l := Default()
	cases := []struct{ name, want string }{
		{"example.com", "com"},
		{"www.example.com", "com"},
		{"foo.co.uk", "co.uk"},
		{"www.foo.co.uk", "co.uk"},
		{"example.jp", "jp"},
		{"foo.co.jp", "co.jp"},
		{"com", "com"},
		{"co.uk", "co.uk"},
		// Unknown TLD falls back to implicit rule.
		{"example.unknowntld", "unknowntld"},
		{"a.b.example.unknowntld", "unknowntld"},
	}
	for _, c := range cases {
		if got := l.PublicSuffix(c.name); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestPublicSuffixWildcardAndException(t *testing.T) {
	l := Default()
	cases := []struct{ name, want string }{
		// *.ck: any label directly under ck is a public suffix.
		{"foo.ck", "foo.ck"},
		{"bar.foo.ck", "foo.ck"},
		// !www.ck exception: www.ck is registerable, suffix is ck.
		{"www.ck", "ck"},
		{"sub.www.ck", "ck"},
		// wildcard base with nothing below it
		{"ck", "ck"},
		{"example.bd", "example.bd"},
	}
	for _, c := range cases {
		if got := l.PublicSuffix(c.name); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestETLDPlusOne(t *testing.T) {
	l := Default()
	cases := []struct{ name, want string }{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.com", "example.com"},
		{"foo.co.uk", "foo.co.uk"},
		{"www.foo.co.uk", "foo.co.uk"},
		{"bar.foo.ck", "bar.foo.ck"},
		{"www.ck", "www.ck"},
		{"sub.www.ck", "www.ck"},
	}
	for _, c := range cases {
		got, err := l.ETLDPlusOne(c.name)
		if err != nil {
			t.Errorf("ETLDPlusOne(%q) error: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestETLDPlusOneErrors(t *testing.T) {
	l := Default()
	for _, name := range []string{"com", "co.uk", "foo.ck", ""} {
		if _, err := l.ETLDPlusOne(name); err == nil {
			t.Errorf("ETLDPlusOne(%q) = nil error, want error", name)
		}
	}
}

func TestIsPublicSuffix(t *testing.T) {
	l := Default()
	if !l.IsPublicSuffix("co.uk") {
		t.Error("co.uk should be a public suffix")
	}
	if l.IsPublicSuffix("example.com") {
		t.Error("example.com should not be a public suffix")
	}
	if l.IsPublicSuffix("") {
		t.Error("empty name should not be a public suffix")
	}
}

func TestNewRejectsBadRules(t *testing.T) {
	if _, err := New([]string{"bad rule with spaces"}); err == nil {
		t.Fatal("expected error for malformed rule")
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	l, err := Parse("// comment\n\ncom\n  \n// another\nnet\n")
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsPublicSuffix("com") || !l.IsPublicSuffix("net") {
		t.Fatal("parsed rules missing")
	}
}

func TestCustomList(t *testing.T) {
	l, err := New([]string{"example", "*.example", "!allowed.example"})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.PublicSuffix("x.example"); got != "x.example" {
		t.Errorf("wildcard match = %q", got)
	}
	if got := l.PublicSuffix("allowed.example"); got != "example" {
		t.Errorf("exception match = %q", got)
	}
	if got, err := l.ETLDPlusOne("www.allowed.example"); err != nil || got != "allowed.example" {
		t.Errorf("exception e2LD = %q, %v", got, err)
	}
}

func TestQuickE2LDIsSuffixOfName(t *testing.T) {
	l := Default()
	f := func(a, b, c uint8) bool {
		name := lbl(a) + "." + lbl(b) + "." + lbl(c) + ".com"
		e2, err := l.ETLDPlusOne(name)
		if err != nil {
			return false
		}
		return strings.HasSuffix(name, e2) && strings.HasSuffix(e2, ".com")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickE2LDIdempotent(t *testing.T) {
	l := Default()
	f := func(a, b uint8) bool {
		name := lbl(a) + "." + lbl(b) + ".co.uk"
		e2, err := l.ETLDPlusOne(name)
		if err != nil {
			return false
		}
		again, err := l.ETLDPlusOne(e2)
		return err == nil && again == e2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func lbl(n uint8) string {
	return string([]byte{'a' + n%26, 'a' + (n/26)%26})
}

func BenchmarkETLDPlusOne(b *testing.B) {
	l := Default()
	names := []string{
		"www.example.com", "a.b.c.deep.example.co.uk",
		"foo.bar.ck", "host123.shop",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.ETLDPlusOne(names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}
