package stalegw

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stalecert/internal/obs"
	"stalecert/internal/shard"
	"stalecert/internal/x509sim"
)

// fakeShard is one scripted staleapid replica: readyz, a consistent
// /v1/shardmap self-report, and whatever /v1 handlers the test wires.
type fakeShard struct {
	ts   *httptest.Server
	hits atomic.Int64
}

func newFakeShard(t *testing.T, idx, count int, epoch uint64, wire func(mux *http.ServeMux)) *fakeShard {
	t.Helper()
	f := &fakeShard{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /v1/shardmap", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(shard.Self{
			Version: shard.MapVersion, Epoch: epoch, Hash: shard.HashName,
			VNodes: shard.DefaultVNodes, Shard: shard.Assignment{Index: idx, Count: count},
		})
	})
	if wire != nil {
		wire(mux)
	}
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			f.hits.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(f.ts.Close)
	return f
}

// newFleet builds n fake shards plus a gateway over them.
func newFleet(t *testing.T, n int, cfg Config, wire func(idx int, mux *http.ServeMux)) ([]*fakeShard, *Gateway) {
	t.Helper()
	shards := make([]*fakeShard, n)
	addrs := make([]string, n)
	for i := range shards {
		i := i
		shards[i] = newFakeShard(t, i, n, 1, func(mux *http.ServeMux) {
			if wire != nil {
				wire(i, mux)
			}
		})
		addrs[i] = shards[i].ts.URL
	}
	cfg.Map = shard.NewMap(1, shard.DefaultVNodes, addrs)
	cfg.Health = obs.NewHealth()
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return shards, gw
}

func gwGet(t *testing.T, gw *Gateway, path string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// Owner-routed queries must hit exactly the ring owner, no other shard.
func TestOwnerRouting(t *testing.T) {
	const n = 3
	shards, gw := newFleet(t, n, Config{}, func(idx int, mux *http.ServeMux) {
		mux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"domain":%q,"shard":%d}`, r.PathValue("e2ld"), idx)
		})
	})
	ring := shard.MustRing(n, shard.DefaultVNodes)
	for i := 0; i < 20; i++ {
		domain := fmt.Sprintf("routed%02d.com", i)
		owner := ring.Lookup(shard.KeyForDomain(domain))
		before := shards[owner].hits.Load()
		resp, body := gwGet(t, gw, "/v1/domain/"+domain+"/staleness")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", domain, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), fmt.Sprintf(`"shard":%d`, owner)) {
			t.Fatalf("%s answered by the wrong shard: %s (owner %d)", domain, body, owner)
		}
		if shards[owner].hits.Load() != before+1 {
			t.Fatalf("%s: owner %d not hit exactly once", domain, owner)
		}
		for j, f := range shards {
			if j != owner && f.hits.Load() != 0 {
				t.Fatalf("%s leaked to non-owner shard %d", domain, j)
			}
		}
		for _, f := range shards {
			f.hits.Store(0)
		}
	}

	resp, _ := gwGet(t, gw, "/v1/domain/!!bad!!/staleness")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad domain status = %d", resp.StatusCode)
	}
}

// Fingerprint lookups scatter to every shard; the single hit wins, a clean
// all-shard miss is 404, and both fingerprint spellings share one cache
// entry.
func TestCertScatter(t *testing.T) {
	cert, err := x509sim.New(42, 1, 42, []string{"scattered.com"}, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	fp := cert.Fingerprint()
	const holder = 2
	shards, gw := newFleet(t, 3, Config{}, func(idx int, mux *http.ServeMux) {
		mux.HandleFunc("GET /v1/cert/{fp}", func(w http.ResponseWriter, r *http.Request) {
			got := r.PathValue("fp")
			if idx != holder || (got != fp.Hex() && got != fp.String()) {
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprint(w, `{"error":"unknown fingerprint"}`)
				return
			}
			fmt.Fprintf(w, `{"fingerprint":%q}`, fp.Hex())
		})
	})

	resp, body := gwGet(t, gw, "/v1/cert/"+fp.Hex())
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), fp.Hex()) {
		t.Fatalf("scatter lookup = %d: %s", resp.StatusCode, body)
	}
	for _, f := range shards {
		if f.hits.Load() != 1 {
			t.Fatal("scatter did not reach every shard exactly once")
		}
	}
	if gw.Cache().Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", gw.Cache().Len())
	}

	// The short form is the same identity: cache hit, no second fan-out.
	resp, _ = gwGet(t, gw, "/v1/cert/"+fp.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("short form status = %d", resp.StatusCode)
	}
	if gw.Cache().Len() != 1 {
		t.Fatalf("cache holds %d entries after both spellings, want 1", gw.Cache().Len())
	}
	for _, f := range shards {
		if f.hits.Load() != 1 {
			t.Fatal("short-form lookup re-scattered instead of hitting the cache")
		}
	}

	resp, _ = gwGet(t, gw, "/v1/cert/"+strings.Repeat("ee", 32))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("all-shard miss status = %d, want 404", resp.StatusCode)
	}
	resp, _ = gwGet(t, gw, "/v1/cert/nothex")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed fp status = %d", resp.StatusCode)
	}
}

// A miss with a dead shard in the fan-out is NOT an authoritative 404: the
// answer may live on the dead replica, so the gateway says 502 + missing.
func TestCertScatterPartialMiss(t *testing.T) {
	shards, gw := newFleet(t, 3, Config{}, func(idx int, mux *http.ServeMux) {
		mux.HandleFunc("GET /v1/cert/{fp}", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"unknown fingerprint"}`)
		})
	})
	shards[1].ts.Close()
	resp, body := gwGet(t, gw, "/v1/cert/"+strings.Repeat("ab", 32))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(MissingShardsHeader); got != "1" {
		t.Fatalf("%s = %q, want 1", MissingShardsHeader, got)
	}
}

// The domains listing merges every shard's slice; a dead shard degrades the
// merge (missing slice, marked) instead of failing it.
func TestDomainsScatterMerge(t *testing.T) {
	lists := [][]string{
		{"alpha.com", "delta.com"},
		{"beta.org"},
		{"gamma.net", "omega.io"},
	}
	shards, gw := newFleet(t, 3, Config{}, func(idx int, mux *http.ServeMux) {
		mux.HandleFunc("GET /v1/domains", func(w http.ResponseWriter, _ *http.Request) {
			_ = json.NewEncoder(w).Encode(map[string]any{"domains": lists[idx], "total": len(lists[idx])})
		})
	})

	resp, body := gwGet(t, gw, "/v1/domains")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var dr DomainsResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Total != 5 || len(dr.Domains) != 5 || dr.Degraded ||
		dr.Domains[0] != "alpha.com" || dr.Domains[4] != "omega.io" {
		t.Fatalf("merged = %+v", dr)
	}

	shards[2].ts.Close()
	resp, body = gwGet(t, gw, "/v1/domains")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Degraded || dr.Total != 3 || len(dr.MissingShards) != 1 || dr.MissingShards[0] != 2 {
		t.Fatalf("degraded merge = %+v", dr)
	}
	if got := resp.Header.Get(MissingShardsHeader); got != "2" {
		t.Fatalf("%s = %q, want 2", MissingShardsHeader, got)
	}
}

// When the owner shard dies, its last-good cached response keeps serving —
// marked degraded, with the stale-evidence and missing-shard headers.
func TestOwnerServeStaleDegraded(t *testing.T) {
	const n = 3
	shards, gw := newFleet(t, n, Config{CacheTTL: 30 * time.Millisecond}, func(idx int, mux *http.ServeMux) {
		mux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"domain":%q,"stale":[]}`, r.PathValue("e2ld"))
		})
	})
	ring := shard.MustRing(n, shard.DefaultVNodes)
	domain := "lastgood.com"
	owner := ring.Lookup(shard.KeyForDomain(domain))

	resp, _ := gwGet(t, gw, "/v1/domain/"+domain+"/staleness")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d", resp.StatusCode)
	}

	shards[owner].ts.Close()
	time.Sleep(60 * time.Millisecond) // let the cached entry expire

	resp, body := gwGet(t, gw, "/v1/domain/"+domain+"/staleness")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serve-stale status = %d: %s", resp.StatusCode, body)
	}
	var payload map[string]any
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	if payload["degraded"] != true || payload["evidence_age"] == nil {
		t.Fatalf("degraded markers missing: %s", body)
	}
	if got := resp.Header.Get(MissingShardsHeader); got != fmt.Sprint(owner) {
		t.Fatalf("%s = %q, want %d", MissingShardsHeader, got, owner)
	}
	if resp.Header.Get(obs.StaleEvidenceHeader) == "" {
		t.Fatal("no X-Stale-Evidence header on stale-served response")
	}

	// A domain with nothing cached and a dead owner is an honest 502.
	cold := ""
	for i := 0; cold == ""; i++ {
		d := fmt.Sprintf("cold%02d.com", i)
		if ring.Lookup(shard.KeyForDomain(d)) == owner {
			cold = d
		}
	}
	resp, _ = gwGet(t, gw, "/v1/domain/"+cold+"/staleness")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("cold dead-owner status = %d, want 502", resp.StatusCode)
	}
}

// Readiness is quorum-based over probe rounds, and a shard whose shard-map
// self-report disagrees with the gateway's map counts as down.
func TestQuorumReadiness(t *testing.T) {
	shards, gw := newFleet(t, 3, Config{Quorum: 2}, nil)
	ctx := context.Background()

	if err := gw.QuorumProbe(ctx); err == nil {
		t.Fatal("ready before any probe round")
	}
	gw.ProbeOnce(ctx)
	if err := gw.QuorumProbe(ctx); err != nil {
		t.Fatalf("all-up fleet not ready: %v", err)
	}

	shards[0].ts.Close()
	gw.ProbeOnce(ctx)
	err := gw.QuorumProbe(ctx)
	if err == nil || !obs.IsDegraded(err) {
		t.Fatalf("2/3 up: err = %v, want degraded", err)
	}

	shards[1].ts.Close()
	gw.ProbeOnce(ctx)
	err = gw.QuorumProbe(ctx)
	if err == nil || obs.IsDegraded(err) {
		t.Fatalf("1/3 up: err = %v, want hard unready", err)
	}

	// A mis-mapped replica (wrong epoch) is down even though it's serving.
	wrong := newFakeShard(t, 0, 2, 99, nil)
	right := newFakeShard(t, 1, 2, 1, nil)
	m := shard.NewMap(1, shard.DefaultVNodes, []string{wrong.ts.URL, right.ts.URL})
	gw2, err := New(Config{Map: m, Health: obs.NewHealth(), Quorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	gw2.ProbeOnce(ctx)
	if err := gw2.QuorumProbe(ctx); err == nil || !obs.IsDegraded(err) {
		t.Fatalf("mis-mapped shard: err = %v, want degraded (1/2 up)", err)
	}
}

// The gateway's own shardmap endpoint serves the full topology.
func TestGatewayShardmap(t *testing.T) {
	_, gw := newFleet(t, 2, Config{}, nil)
	resp, body := gwGet(t, gw, "/v1/shardmap")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var m shard.Map
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 2 || m.Shards[0].Addr == "" {
		t.Fatalf("map = %+v", m)
	}
}

// newReplicatedFleet builds n slices with reps replicas each plus a gateway.
// Returns shards indexed [slice][replica].
func newReplicatedFleet(t *testing.T, n, reps int, cfg Config, wire func(slice, replica int, mux *http.ServeMux)) ([][]*fakeShard, *Gateway) {
	t.Helper()
	shards := make([][]*fakeShard, n)
	groups := make([][]string, n)
	for i := range shards {
		for r := 0; r < reps; r++ {
			i, r := i, r
			f := newFakeShard(t, i, n, 1, func(mux *http.ServeMux) {
				if wire != nil {
					wire(i, r, mux)
				}
			})
			shards[i] = append(shards[i], f)
			groups[i] = append(groups[i], f.ts.URL)
		}
	}
	cfg.Map = shard.NewReplicatedMap(1, shard.DefaultVNodes, groups)
	cfg.Health = obs.NewHealth()
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return shards, gw
}

// domainsOwnedBy returns count distinct domains the ring places on slice idx.
func domainsOwnedBy(t *testing.T, n, idx, count int) []string {
	t.Helper()
	ring := shard.MustRing(n, shard.DefaultVNodes)
	var out []string
	for i := 0; len(out) < count && i < 10000; i++ {
		d := fmt.Sprintf("owned%04d.com", i)
		if ring.Lookup(shard.KeyForDomain(d)) == idx {
			out = append(out, d)
		}
	}
	if len(out) < count {
		t.Fatal("could not find enough domains for the slice")
	}
	return out
}

// Killing one replica of a slice must be invisible: owner routes fail over
// to the sibling, answers stay 200 and non-degraded, and the failover
// counter advances.
func TestReplicaFailoverOnDeath(t *testing.T) {
	shards, gw := newReplicatedFleet(t, 2, 2, Config{}, func(slice, replica int, mux *http.ServeMux) {
		mux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"domain":%q,"slice":%d}`, r.PathValue("e2ld"), slice)
		})
	})
	failovers := obs.Default().Counter("stalegw_failovers_total", "shard", "0")
	before := failovers.Value()

	shards[0][0].ts.Close() // no probe round yet: the gateway can't know

	for _, d := range domainsOwnedBy(t, 2, 0, 6) {
		resp, body := gwGet(t, gw, "/v1/domain/"+d+"/staleness")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", d, resp.StatusCode, body)
		}
		if strings.Contains(string(body), "degraded") {
			t.Fatalf("%s: degraded answer with a live sibling: %s", d, body)
		}
		if got := resp.Header.Get(MissingShardsHeader); got != "" {
			t.Fatalf("%s: %s = %q with a live sibling", d, MissingShardsHeader, got)
		}
	}
	// Round-robin put the dead replica first on ~half the calls; each such
	// call failed over to the sibling.
	if failovers.Value() == before {
		t.Fatal("failover counter did not advance")
	}
}

// After a probe round marks a replica down, replicaOrder puts it last: no
// failovers are needed any more, the sibling is dialed first.
func TestReplicaOrderAfterProbe(t *testing.T) {
	shards, gw := newReplicatedFleet(t, 2, 2, Config{}, func(slice, replica int, mux *http.ServeMux) {
		mux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, `{"ok":true}`)
		})
	})
	shards[0][1].ts.Close()
	gw.ProbeOnce(context.Background())
	shards[0][0].hits.Store(0) // the probe's own /v1/shardmap hit

	failovers := obs.Default().Counter("stalegw_failovers_total", "shard", "0")
	before := failovers.Value()
	for _, d := range domainsOwnedBy(t, 2, 0, 6) {
		resp, _ := gwGet(t, gw, "/v1/domain/"+d+"/staleness")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", d, resp.StatusCode)
		}
	}
	if got := failovers.Value(); got != before {
		t.Fatalf("%d failovers after the probe marked the replica down, want 0", got-before)
	}
	if hits := shards[0][0].hits.Load(); hits != 6 {
		t.Fatalf("live replica served %d of 6 queries", hits)
	}
}

// A slow replica is hedged: after HedgeAfter the sibling is raced and its
// fast answer wins, visible in the hedge counters.
func TestReplicaHedging(t *testing.T) {
	slow := 0 // replica 0 of every slice answers slowly
	shards, gw := newReplicatedFleet(t, 2, 2, Config{HedgeAfter: 2 * time.Millisecond},
		func(slice, replica int, mux *http.ServeMux) {
			mux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, r *http.Request) {
				if replica == slow {
					select {
					case <-r.Context().Done():
						return
					case <-time.After(300 * time.Millisecond):
					}
				}
				fmt.Fprint(w, `{"ok":true}`)
			})
		})
	_ = shards
	hedged := obs.Default().Counter("stalegw_hedged_requests_total", "shard", "0")
	wins := obs.Default().Counter("stalegw_hedge_wins_total", "shard", "0")
	beforeHedged, beforeWins := hedged.Value(), wins.Value()

	for _, d := range domainsOwnedBy(t, 2, 0, 6) {
		start := time.Now()
		resp, _ := gwGet(t, gw, "/v1/domain/"+d+"/staleness")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", d, resp.StatusCode)
		}
		if time.Since(start) > 250*time.Millisecond {
			t.Fatalf("%s: waited out the slow replica instead of hedging", d)
		}
	}
	if hedged.Value() == beforeHedged {
		t.Fatal("hedged-requests counter did not advance")
	}
	if wins.Value() == beforeWins {
		t.Fatal("hedge-wins counter did not advance")
	}
}

// Readiness is per-slice: one dead replica of a replicated slice keeps the
// fleet fully ready; a fully-dead slice degrades it.
func TestPerSliceQuorumReadiness(t *testing.T) {
	shards, gw := newReplicatedFleet(t, 2, 2, Config{Quorum: 1}, nil)
	ctx := context.Background()
	gw.ProbeOnce(ctx)
	if err := gw.QuorumProbe(ctx); err != nil {
		t.Fatalf("all-up fleet not ready: %v", err)
	}

	shards[0][0].ts.Close()
	gw.ProbeOnce(ctx)
	if err := gw.QuorumProbe(ctx); err != nil {
		t.Fatalf("1 dead replica of 2: err = %v, want fully ready", err)
	}
	if v := obs.Default().Gauge("stalegw_replica_up", "shard", "0", "replica", "0").Value(); v != 0 {
		t.Fatalf("replica_up{0,0} = %v, want 0", v)
	}
	if v := obs.Default().Gauge("stalegw_replica_up", "shard", "0", "replica", "1").Value(); v != 1 {
		t.Fatalf("replica_up{0,1} = %v, want 1", v)
	}
	if v := obs.Default().Gauge("stalegw_shard_up", "shard", "0").Value(); v != 1 {
		t.Fatalf("shard_up{0} = %v, want 1 (slice still has a live replica)", v)
	}

	shards[0][1].ts.Close()
	gw.ProbeOnce(ctx)
	err := gw.QuorumProbe(ctx)
	if err == nil || !obs.IsDegraded(err) {
		t.Fatalf("dead slice with quorum 1: err = %v, want degraded", err)
	}
	if v := obs.Default().Gauge("stalegw_shard_up", "shard", "0").Value(); v != 0 {
		t.Fatalf("shard_up{0} = %v, want 0", v)
	}
}

// Scatter legs fail over per-slice too: a dead replica must not punch an
// X-Missing-Shards hole while its sibling lives.
func TestScatterReplicaFailover(t *testing.T) {
	lists := [][]string{{"alpha.com"}, {"beta.org"}}
	shards, gw := newReplicatedFleet(t, 2, 2, Config{}, func(slice, replica int, mux *http.ServeMux) {
		mux.HandleFunc("GET /v1/domains", func(w http.ResponseWriter, _ *http.Request) {
			_ = json.NewEncoder(w).Encode(map[string]any{"domains": lists[slice], "total": len(lists[slice])})
		})
	})
	shards[1][0].ts.Close()
	for i := 0; i < 4; i++ { // both round-robin phases
		resp, body := gwGet(t, gw, "/v1/domains")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var dr DomainsResponse
		if err := json.Unmarshal(body, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.Degraded || dr.Total != 2 || len(dr.Domains) != 2 {
			t.Fatalf("degraded merge with live siblings: %+v", dr)
		}
	}
}

// The gateway's serve-stale cache exports its entry count and honors the
// stale-retention TTL bound.
func TestStaleCacheGaugeAndBounds(t *testing.T) {
	_, gw := newReplicatedFleet(t, 2, 1, Config{CacheTTL: time.Millisecond, StaleTTL: 10 * time.Millisecond},
		func(slice, replica int, mux *http.ServeMux) {
			mux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, _ *http.Request) {
				fmt.Fprint(w, `{"ok":true}`)
			})
		})
	d := domainsOwnedBy(t, 2, 0, 1)[0]
	if resp, _ := gwGet(t, gw, "/v1/domain/"+d+"/staleness"); resp.StatusCode != http.StatusOK {
		t.Fatal("warm-up failed")
	}
	if v := obs.Default().Gauge("stalegw_stale_cache_entries").Value(); v < 1 {
		t.Fatalf("stalegw_stale_cache_entries = %v, want >= 1", v)
	}
}
