// Package stalegw is the stateless query gateway in front of a sharded
// staleapid fleet. It holds no certificate state of its own: a versioned
// shard.Map tells it which replica group owns which ring slice, and every
// query is either owner-routed (domain endpoints — the e2LD names exactly
// one slice) or scatter-gathered (fingerprint and listing endpoints — the
// owner cannot be derived from the request alone).
//
// Every slice may be served by several interchangeable replicas. The
// gateway picks a live replica per call (probe state + breaker state,
// rotated for load spread), fails over to siblings on error or open
// breaker, and — with HedgeAfter set — hedges slow calls by racing a
// sibling replica, first response winning. Only when every replica of a
// slice is down does degradation begin.
//
// Degradation is graceful on both paths. Owner-routed queries whose whole
// slice is down are answered from the gateway's last-good cache, marked
// "degraded": true with X-Stale-Evidence and X-Missing-Shards headers.
// Scatter-gather queries return partial results over the live slices, again
// marked degraded with the missing slice indexes, instead of failing the
// whole query because one slice died. Readiness is quorum-based over
// slices, not processes: a slice is up while at least one replica is
// healthy; all slices up → ready, at least Quorum up → degraded (200),
// below quorum → unready (503).
package stalegw

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stalecert/internal/dnsname"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/shard"
	"stalecert/internal/staleapi"
	"stalecert/internal/x509sim"
)

// MissingShardsHeader lists the ring indexes a degraded response is missing
// data from, comma-separated.
const MissingShardsHeader = "X-Missing-Shards"

// maxShardBody bounds how much of one shard response the gateway buffers.
const maxShardBody = 8 << 20

var (
	mFanouts     = obs.Default().Counter("stalegw_fanouts_total")
	mPartial     = obs.Default().Counter("stalegw_partial_results_total")
	mStaleServed = obs.Default().Counter("stalegw_stale_served_total")
)

// Config assembles a Gateway.
type Config struct {
	// Map is the fleet topology: every member must carry its API base URL.
	Map shard.Map
	// Client performs shard calls. Wire a resil-instrumented client so each
	// fan-out leg gets per-shard circuit breaking, retries and trace spans;
	// nil falls back to http.DefaultClient (tests only).
	Client *http.Client
	// Quorum is the minimum live shards for degraded readiness (default
	// majority, n/2+1). Below it /readyz reports 503.
	Quorum int
	// CacheEntries/CacheTTL size the last-good response cache backing
	// serve-stale degradation (defaults 4096, 5s).
	CacheEntries int
	CacheTTL     time.Duration
	// StaleEntries/StaleTTL bound last-good retention past expiry: at most
	// StaleEntries expired bodies are kept, none longer than StaleTTL past
	// expiry (zero values = retain until capacity eviction, the legacy
	// unbounded behavior).
	StaleEntries int
	StaleTTL     time.Duration
	// HedgeAfter, when > 0, races a sibling replica after this long without
	// a response (plus error-driven failover, which is always on).
	HedgeAfter time.Duration
	// HedgeClock paces the hedge timer (default: the real clock; tests
	// inject a resil.FakeClock).
	HedgeClock resil.Clock
	// Breakers, when set, lets replica selection skip replicas whose
	// circuit is open before ever dialing them. Share the set wired into
	// Client so selection sees the same circuits the transport trips.
	Breakers *resil.BreakerSet
	// Health receives the slice-quorum probe (default obs.DefaultHealth()).
	Health *obs.Health
}

// Gateway routes /v1 queries to the owning slices' replica groups.
type Gateway struct {
	m        shard.Map
	ring     *shard.Ring
	groups   [][]string // per slice: replica base URLs
	hosts    [][]string // per slice: replica URL hosts (breaker peer keys)
	client   *http.Client
	cache    *staleapi.Cache
	health   *obs.Health
	quorum   int
	breakers *resil.BreakerSet
	hedge    resil.Hedge

	rr []atomic.Uint32 // per-slice healthy-replica rotation

	mShardReq  []*obs.Counter
	mShardErr  []*obs.Counter
	mHedged    []*obs.Counter
	mHedgeWins []*obs.Counter
	mFailovers []*obs.Counter
	gShardUp   []*obs.Gauge
	gReplicaUp [][]*obs.Gauge

	// Probe state: per-replica liveness from the last probe round.
	probeMu     sync.Mutex
	probed      bool
	replicaErrs [][]error
}

// New validates the map and builds the gateway.
func New(cfg Config) (*Gateway, error) {
	ring, err := cfg.Map.Ring()
	if err != nil {
		return nil, err
	}
	n := len(cfg.Map.Shards)
	groups := make([][]string, n)
	hosts := make([][]string, n)
	for _, m := range cfg.Map.Shards {
		for _, a := range m.Group() {
			a = strings.TrimRight(a, "/")
			u, uerr := url.Parse(a)
			if uerr != nil || u.Host == "" {
				return nil, fmt.Errorf("stalegw: shard %d: bad replica address %q", m.Index, a)
			}
			groups[m.Index] = append(groups[m.Index], a)
			hosts[m.Index] = append(hosts[m.Index], u.Host)
		}
		if len(groups[m.Index]) == 0 {
			return nil, fmt.Errorf("stalegw: shard %d has no address", m.Index)
		}
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = n/2 + 1
	}
	if cfg.Quorum > n {
		return nil, fmt.Errorf("stalegw: quorum %d exceeds %d slices", cfg.Quorum, n)
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = 5 * time.Second
	}
	if cfg.Health == nil {
		cfg.Health = obs.DefaultHealth()
	}
	cache := staleapi.NewCache(cfg.CacheEntries, cfg.CacheTTL)
	cache.SetStaleBounds(cfg.StaleEntries, cfg.StaleTTL)
	cache.SetSizeGauge(obs.Default().Gauge("stalegw_stale_cache_entries"))
	g := &Gateway{
		m:           cfg.Map,
		ring:        ring,
		groups:      groups,
		hosts:       hosts,
		client:      cfg.Client,
		cache:       cache,
		health:      cfg.Health,
		quorum:      cfg.Quorum,
		breakers:    cfg.Breakers,
		hedge:       resil.Hedge{After: cfg.HedgeAfter, Clock: cfg.HedgeClock},
		rr:          make([]atomic.Uint32, n),
		replicaErrs: make([][]error, n),
	}
	for i := range groups {
		label := strconv.Itoa(i)
		g.replicaErrs[i] = make([]error, len(groups[i]))
		g.mShardReq = append(g.mShardReq, obs.Default().Counter("stalegw_shard_requests_total", "shard", label))
		g.mShardErr = append(g.mShardErr, obs.Default().Counter("stalegw_shard_errors_total", "shard", label))
		g.mHedged = append(g.mHedged, obs.Default().Counter("stalegw_hedged_requests_total", "shard", label))
		g.mHedgeWins = append(g.mHedgeWins, obs.Default().Counter("stalegw_hedge_wins_total", "shard", label))
		g.mFailovers = append(g.mFailovers, obs.Default().Counter("stalegw_failovers_total", "shard", label))
		g.gShardUp = append(g.gShardUp, obs.Default().Gauge("stalegw_shard_up", "shard", label))
		var ups []*obs.Gauge
		for r := range groups[i] {
			ups = append(ups, obs.Default().Gauge("stalegw_replica_up", "shard", label, "replica", strconv.Itoa(r)))
		}
		g.gReplicaUp = append(g.gReplicaUp, ups)
	}
	g.health.Register("shard-quorum", g.QuorumProbe)
	return g, nil
}

// Cache exposes the last-good response cache (tests shrink its TTL).
func (g *Gateway) Cache() *staleapi.Cache { return g.cache }

// Handler returns the gateway mux. Wrap it in obs.Middleware for RED
// metrics, request IDs and trace propagation into the fan-out legs.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/domain/{e2ld}/certs", g.handleOwnerRouted)
	mux.HandleFunc("GET /v1/domain/{e2ld}/staleness", g.handleOwnerRouted)
	mux.HandleFunc("GET /v1/cert/{fp}", g.handleCert)
	mux.HandleFunc("GET /v1/domains", g.handleDomains)
	mux.HandleFunc("GET /v1/shardmap", g.handleShardmap)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s\n", g.health.Uptime().Round(time.Millisecond))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		obs.WriteReadyz(w, g.health.Check(ctx))
	})
	return mux
}

// result is one buffered shard response, the unit the last-good cache holds.
type result struct {
	status int
	ctype  string
	body   []byte
}

type errorJSON struct {
	Error         string `json:"error"`
	MissingShards []int  `json:"missing_shards,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (g *Gateway) writeResult(w http.ResponseWriter, res result) {
	if res.ctype != "" {
		w.Header().Set("Content-Type", res.ctype)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// getAddr performs one raw replica call (no per-shard metrics — probes use
// it too).
func (g *Gateway) getAddr(ctx context.Context, addr, pathq string) (result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+pathq, nil)
	if err != nil {
		return result{}, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return result{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return result{}, fmt.Errorf("read body: %w", err)
	}
	return result{status: resp.StatusCode, ctype: resp.Header.Get("Content-Type"), body: body}, nil
}

// replicaOrder ranks slice idx's replicas for the next call: healthy
// replicas first, rotated per call so load spreads across siblings, then
// unhealthy ones as last resorts (a probe round may be stale — a "down"
// replica can still save a query whose healthy siblings just died).
// Healthy means the last probe round passed (or none ran yet) AND the
// replica's circuit breaker is not open.
func (g *Gateway) replicaOrder(idx int) []int {
	n := len(g.groups[idx])
	if n == 1 {
		return []int{0}
	}
	g.probeMu.Lock()
	probed := g.probed
	errs := append([]error(nil), g.replicaErrs[idx]...)
	g.probeMu.Unlock()
	healthy := make([]int, 0, n)
	down := make([]int, 0, n)
	for r := 0; r < n; r++ {
		ok := !probed || errs[r] == nil
		if ok && g.breakers != nil && g.breakers.For(g.hosts[idx][r]).State() == resil.Open {
			ok = false
		}
		if ok {
			healthy = append(healthy, r)
		} else {
			down = append(down, r)
		}
	}
	if len(healthy) == 0 {
		return down
	}
	start := int(g.rr[idx].Add(1)-1) % len(healthy)
	order := make([]int, 0, n)
	for i := range healthy {
		order = append(order, healthy[(start+i)%len(healthy)])
	}
	return append(order, down...)
}

// fetchSlice is one counted query leg against a slice: the ranked replicas
// are raced through resil.HedgeDo — sequential failover on error, a
// speculative sibling after the hedge delay — and only when every replica
// fails does the slice count as missing. A 5xx from a replica (after the
// resilient client's own retries) is a leg failure, like a transport error.
func (g *Gateway) fetchSlice(ctx context.Context, idx int, pathq string) (result, error) {
	g.mShardReq[idx].Inc()
	order := g.replicaOrder(idx)
	res, stats, err := resil.HedgeDo(ctx, g.hedge, len(order), func(ctx context.Context, leg int) (result, error) {
		r := order[leg]
		res, lerr := g.getAddr(ctx, g.groups[idx][r], pathq)
		if lerr == nil && res.status >= 500 {
			lerr = fmt.Errorf("status %d", res.status)
		}
		if lerr != nil {
			return result{}, fmt.Errorf("shard %d replica %d: %w", idx, r, lerr)
		}
		return res, nil
	})
	if stats.Hedged > 0 {
		g.mHedged[idx].Add(uint64(stats.Hedged))
		if stats.HedgedWin {
			g.mHedgeWins[idx].Inc()
		}
	}
	if stats.Failovers > 0 {
		g.mFailovers[idx].Add(uint64(stats.Failovers))
	}
	if err != nil {
		g.mShardErr[idx].Inc()
		return result{}, err
	}
	return res, nil
}

// missingHeader formats ring indexes for MissingShardsHeader.
func missingHeader(missing []int) string {
	parts := make([]string, len(missing))
	for i, m := range missing {
		parts[i] = strconv.Itoa(m)
	}
	return strings.Join(parts, ",")
}

// markDegraded rewrites a cached JSON body as a degraded verdict: the data
// is last-good, not live, and the payload says so exactly like a staleapid
// serving stale evidence would.
func markDegraded(res result, age time.Duration) result {
	var m map[string]any
	if json.Unmarshal(res.body, &m) != nil {
		return res
	}
	m["degraded"] = true
	m["evidence_age"] = age.Round(time.Millisecond).String()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return res
	}
	res.body = append(b, '\n')
	return res
}

// handleOwnerRouted proxies a domain endpoint to the one shard owning the
// e2LD, falling back to the last-good cached response when that shard is
// down.
func (g *Gateway) handleOwnerRouted(w http.ResponseWriter, r *http.Request) {
	domain := dnsname.Canonical(r.PathValue("e2ld"))
	if err := dnsname.Check(domain, false); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("bad domain: %v", err)})
		return
	}
	idx := g.ring.Lookup(shard.KeyForDomain(domain))
	uri := r.URL.RequestURI()
	v, info, err := g.cache.Do(uri, func() (any, error) {
		res, ferr := g.fetchSlice(r.Context(), idx, uri)
		if ferr != nil {
			return nil, ferr
		}
		return res, nil
	})
	if err != nil {
		w.Header().Set(MissingShardsHeader, strconv.Itoa(idx))
		writeJSON(w, http.StatusBadGateway, errorJSON{Error: err.Error(), MissingShards: []int{idx}})
		return
	}
	res := v.(result)
	if info.Stale {
		mStaleServed.Inc()
		res = markDegraded(res, info.Age)
		w.Header().Set(MissingShardsHeader, strconv.Itoa(idx))
		w.Header().Set(obs.StaleEvidenceHeader,
			fmt.Sprintf("shard:%d age=%s", idx, info.Age.Round(time.Millisecond)))
	}
	g.writeResult(w, res)
}

// leg is one scatter-gather response.
type leg struct {
	idx int
	res result
	err error
}

// scatter queries every slice in parallel. Each leg picks the slice's first
// healthy replica and retries on siblings (fetchSlice), and each replica
// call rides the resilient client, so it carries its own trace span,
// retries and breaker accounting.
func (g *Gateway) scatter(ctx context.Context, pathq string) []leg {
	mFanouts.Inc()
	legs := make([]leg, len(g.groups))
	var wg sync.WaitGroup
	for i := range g.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := g.fetchSlice(ctx, i, pathq)
			legs[i] = leg{idx: i, res: res, err: err}
		}(i)
	}
	wg.Wait()
	return legs
}

// handleCert scatter-gathers a fingerprint lookup: the fingerprint alone
// cannot recover the owning e2LD, so every shard is asked and the hit wins.
// A clean miss on every live shard is an authoritative 404 only when no
// shard was missing; otherwise the answer may live on the dead replica.
func (g *Gateway) handleCert(w http.ResponseWriter, r *http.Request) {
	fpRaw := r.PathValue("fp")
	if _, _, err := x509sim.ParseFingerprint(fpRaw); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	// Cache under the normalized fingerprint identity, so the 16-hex short
	// and 64-hex full spellings of one certificate share one entry.
	key := "cert:" + shard.KeyForFingerprint(fpRaw)
	var missing []int
	v, info, err := g.cache.Do(key, func() (any, error) {
		legs := g.scatter(r.Context(), r.URL.RequestURI())
		var found *result
		for _, l := range legs {
			if l.err != nil {
				missing = append(missing, l.idx)
				continue
			}
			if l.res.status == http.StatusOK && found == nil {
				res := l.res
				found = &res
			}
		}
		if found != nil {
			return *found, nil
		}
		if len(missing) > 0 {
			return nil, fmt.Errorf("fingerprint not found on %d live shards; %d unreachable", len(g.groups)-len(missing), len(missing))
		}
		return result{status: http.StatusNotFound, ctype: "application/json; charset=utf-8",
			body: []byte("{\n  \"error\": \"unknown fingerprint\"\n}\n")}, nil
	})
	if err != nil {
		mPartial.Inc()
		w.Header().Set(MissingShardsHeader, missingHeader(missing))
		writeJSON(w, http.StatusBadGateway, errorJSON{Error: err.Error(), MissingShards: missing})
		return
	}
	res := v.(result)
	if info.Stale {
		mStaleServed.Inc()
		if len(missing) > 0 {
			w.Header().Set(MissingShardsHeader, missingHeader(missing))
		}
		w.Header().Set(obs.StaleEvidenceHeader,
			fmt.Sprintf("cert:%s age=%s", fpRaw, info.Age.Round(time.Millisecond)))
		res = markDegraded(res, info.Age)
	}
	g.writeResult(w, res)
}

// DomainsResponse is the gateway's merged /v1/domains payload: the shards'
// listings unioned, plus the degradation markers partial results carry.
type DomainsResponse struct {
	Domains       []string `json:"domains"`
	Total         int      `json:"total"`
	Degraded      bool     `json:"degraded,omitempty"`
	MissingShards []int    `json:"missing_shards,omitempty"`
}

// handleDomains scatter-merges the per-shard listings. Dead shards degrade
// the result (their slice of the namespace is simply absent, and the
// response says so) rather than failing it — unless every shard is dead.
func (g *Gateway) handleDomains(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad limit"})
			return
		}
		limit = min(n, 10000)
	}
	legs := g.scatter(r.Context(), r.URL.RequestURI())
	merged := DomainsResponse{Domains: []string{}}
	for _, l := range legs {
		if l.err != nil {
			merged.MissingShards = append(merged.MissingShards, l.idx)
			continue
		}
		var dr staleapi.DomainsResponse
		if uerr := json.Unmarshal(l.res.body, &dr); uerr != nil || l.res.status != http.StatusOK {
			merged.MissingShards = append(merged.MissingShards, l.idx)
			continue
		}
		merged.Total += dr.Total
		merged.Domains = append(merged.Domains, dr.Domains...)
	}
	if len(merged.MissingShards) == len(g.groups) {
		writeJSON(w, http.StatusBadGateway, errorJSON{Error: "all shards unreachable", MissingShards: merged.MissingShards})
		return
	}
	sort.Strings(merged.Domains)
	merged.Domains = dedupeSorted(merged.Domains)
	if len(merged.Domains) > limit {
		merged.Domains = merged.Domains[:limit]
	}
	if len(merged.MissingShards) > 0 {
		mPartial.Inc()
		merged.Degraded = true
		w.Header().Set(MissingShardsHeader, missingHeader(merged.MissingShards))
	}
	writeJSON(w, http.StatusOK, merged)
}

// dedupeSorted collapses adjacent duplicates (a multi-e2LD certificate is
// deliberately stored on several shards; its domains are not).
func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// handleShardmap serves the gateway's full topology document — the fleet
// view, where each staleapid serves only its own slice.
func (g *Gateway) handleShardmap(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, g.m)
}

// probeReplica checks one replica of one slice is ready AND agrees with the
// gateway's map: a live replica holding a different ring (wrong epoch,
// vnodes, slice...) would silently mis-route, so it counts as down.
func (g *Gateway) probeReplica(ctx context.Context, idx, r int) error {
	addr := g.groups[idx][r]
	res, err := g.getAddr(ctx, addr, "/readyz")
	if err != nil {
		return fmt.Errorf("shard %d replica %d: %w", idx, r, err)
	}
	if res.status != http.StatusOK {
		return fmt.Errorf("shard %d replica %d: readyz status %d", idx, r, res.status)
	}
	res, err = g.getAddr(ctx, addr, "/v1/shardmap")
	if err != nil {
		return fmt.Errorf("shard %d replica %d: %w", idx, r, err)
	}
	if res.status != http.StatusOK {
		return fmt.Errorf("shard %d replica %d: shardmap status %d", idx, r, res.status)
	}
	var self shard.Self
	if err := json.Unmarshal(res.body, &self); err != nil {
		return fmt.Errorf("shard %d replica %d: bad shardmap document: %w", idx, r, err)
	}
	if err := g.m.Agrees(idx, self); err != nil {
		return fmt.Errorf("replica %d: %w", r, err)
	}
	return nil
}

// ProbeOnce runs one probe round over every replica of every slice,
// updating the liveness state behind QuorumProbe (and replicaOrder) and the
// stalegw_shard_up / stalegw_replica_up gauges.
func (g *Gateway) ProbeOnce(ctx context.Context) {
	errs := make([][]error, len(g.groups))
	var wg sync.WaitGroup
	for i := range g.groups {
		errs[i] = make([]error, len(g.groups[i]))
		for r := range g.groups[i] {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				errs[i][r] = g.probeReplica(ctx, i, r)
			}(i, r)
		}
	}
	wg.Wait()
	g.probeMu.Lock()
	g.probed = true
	for i := range errs {
		copy(g.replicaErrs[i], errs[i])
	}
	g.probeMu.Unlock()
	for i := range errs {
		sliceUp := false
		for r, err := range errs[i] {
			if err == nil {
				sliceUp = true
				g.gReplicaUp[i][r].Set(1)
			} else {
				g.gReplicaUp[i][r].Set(0)
			}
		}
		if sliceUp {
			g.gShardUp[i].Set(1)
		} else {
			g.gShardUp[i].Set(0)
		}
	}
}

// RunProbes probes every interval until the context is cancelled; the first
// round runs immediately so readiness settles at startup.
func (g *Gateway) RunProbes(ctx context.Context, interval time.Duration) {
	for {
		g.ProbeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

// QuorumProbe is the gateway's readiness, computed over slices, not
// processes: a slice is up while at least one of its replicas passed the
// last probe round, so losing one replica of a replicated slice keeps the
// fleet fully ready. All slices up → ready; at least the quorum up →
// degraded (200 — partial answers still serve); below quorum, or before the
// first probe round, → unready (503).
func (g *Gateway) QuorumProbe(context.Context) error {
	g.probeMu.Lock()
	defer g.probeMu.Unlock()
	if !g.probed {
		return errors.New("no shard probe round completed yet")
	}
	up := 0
	var firstDown error
	for _, errs := range g.replicaErrs {
		sliceUp := false
		var sliceErr error
		for _, err := range errs {
			if err == nil {
				sliceUp = true
				break
			} else if sliceErr == nil {
				sliceErr = err
			}
		}
		if sliceUp {
			up++
		} else if firstDown == nil {
			firstDown = sliceErr
		}
	}
	n := len(g.replicaErrs)
	switch {
	case up == n:
		return nil
	case up >= g.quorum:
		return obs.Degraded(fmt.Errorf("%d/%d slices up (quorum %d): %v", up, n, g.quorum, firstDown))
	default:
		return fmt.Errorf("%d/%d slices up, below quorum %d: %v", up, n, g.quorum, firstDown)
	}
}
