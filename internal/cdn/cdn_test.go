package cdn

import (
	"errors"
	"sync/atomic"
	"testing"

	"stalecert/internal/ca"
	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func testProvider(t *testing.T, perDomainFrom simtime.Day) (*Provider, *dnssim.Store) {
	t.Helper()
	var keys atomic.Uint64
	mint := func() x509sim.KeyID { return x509sim.KeyID(keys.Add(1)) }
	cruise := ca.New(ca.Config{
		Profile: ca.Profile{ID: ca.IssuerComodoDV, Name: "COMODO ECC DV Secure Server CA 2", DefaultLifetime: 365},
		NewKey:  mint,
	})
	perDom := ca.New(ca.Config{
		Profile: ca.Profile{ID: ca.IssuerCloudflareECC, Name: "CloudFlare ECC CA-2", DefaultLifetime: 365},
		NewKey:  mint,
	})
	store := dnssim.NewStore()
	store.AddZone(dnssim.NewZone("com"))
	p := New(Config{
		Name:          "cloudflare",
		NameServers:   []string{"kiki.ns.cloudflare.com", "uma.ns.cloudflare.com"},
		EdgeSuffix:    "cdn.cloudflare.com",
		MarkerSuffix:  "cloudflaressl.com",
		BoatSize:      3,
		CruiseCA:      cruise,
		PerDomainCA:   perDom,
		PerDomainFrom: perDomainFrom,
		Store:         store,
		EdgeIPs:       []string{"104.16.0.1"},
	})
	return p, store
}

func TestEnrollNSInstallsDelegation(t *testing.T) {
	p, store := testProvider(t, 10000)
	cert, err := p.Enroll("shop.com", ModeNS, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("no certificate issued")
	}
	zone := store.Zone("com")
	ns := zone.Lookup("shop.com", dnssim.TypeNS)
	if len(ns) != 2 || !p.IsProviderRecord(ns[0]) {
		t.Fatalf("NS records = %v", ns)
	}
	if a := zone.Lookup("shop.com", dnssim.TypeA); len(a) != 1 || a[0].Data != "104.16.0.1" {
		t.Fatalf("A records = %v", a)
	}
	if !p.IsManagedCert(cert) {
		t.Fatalf("cert missing marker SAN: %v", cert.Names)
	}
	if !cert.Covers("shop.com") || !cert.Covers("www.shop.com") {
		t.Fatalf("cert coverage: %v", cert.Names)
	}
}

func TestEnrollCNAME(t *testing.T) {
	p, store := testProvider(t, 0) // per-domain era
	if _, err := p.Enroll("blog.com", ModeCNAME, 50); err != nil {
		t.Fatal(err)
	}
	rec := store.Zone("com").Lookup("www.blog.com", dnssim.TypeCNAME)
	if len(rec) != 1 || !p.IsProviderRecord(rec[0]) {
		t.Fatalf("CNAME = %v", rec)
	}
}

func TestDoubleEnrollRejected(t *testing.T) {
	p, _ := testProvider(t, 0)
	if _, err := p.Enroll("x.com", ModeNS, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Enroll("x.com", ModeNS, 1); !errors.Is(err, ErrEnrolled) {
		t.Fatalf("double enroll: %v", err)
	}
}

func TestCruiseLinerPackingAndReissue(t *testing.T) {
	p, _ := testProvider(t, 10000) // cruise-liner era
	var first *x509sim.Certificate
	for i, d := range []string{"a.com", "b.com", "c.com"} {
		cert, err := p.Enroll(d, ModeNS, simtime.Day(10+i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = cert
		}
	}
	// Same boat: every enroll reissues with one more member, same key.
	certs := p.Certificates()
	if len(certs) != 3 {
		t.Fatalf("issued %d certs", len(certs))
	}
	for _, c := range certs[1:] {
		if c.Key != first.Key {
			t.Fatal("boat key changed across reissues")
		}
	}
	last := certs[2]
	for _, d := range []string{"a.com", "b.com", "c.com"} {
		if !last.HasName(d) {
			t.Fatalf("final boat cert missing %s: %v", d, last.Names)
		}
	}
	// Fourth customer overflows into a new boat with a fresh key and marker.
	cert4, err := p.Enroll("d.com", ModeNS, 20)
	if err != nil {
		t.Fatal(err)
	}
	if cert4.Key == first.Key {
		t.Fatal("overflow boat reused key")
	}
	if cert4.HasName("a.com") {
		t.Fatal("overflow boat contains other boat's member")
	}
}

func TestDepartReissuesBoatWithoutDomain(t *testing.T) {
	p, store := testProvider(t, 10000)
	for i, d := range []string{"stay.com", "leave.com"} {
		if _, err := p.Enroll(d, ModeNS, simtime.Day(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Depart("leave.com", 100); err != nil {
		t.Fatal(err)
	}
	// DNS delegation removed.
	zone := store.Zone("com")
	for _, r := range zone.Lookup("leave.com", dnssim.TypeNS) {
		if p.IsProviderRecord(r) {
			t.Fatal("provider NS still present after departure")
		}
	}
	// Boat reissued without the departed domain...
	certs := p.Certificates()
	final := certs[len(certs)-1]
	if final.HasName("leave.com") || !final.HasName("stay.com") {
		t.Fatalf("post-departure boat cert = %v", final.Names)
	}
	// ...but older, still-valid certs naming leave.com remain under the
	// provider's key: the stale-certificate condition.
	stale := 0
	for _, c := range certs {
		if c.HasName("leave.com") && c.ValidOn(100) {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("no stale certificates left behind — departure modelled wrong")
	}
	cust, _ := p.Customer("leave.com")
	if cust.Active() || cust.Departed != 100 {
		t.Fatalf("customer = %+v", cust)
	}
	if got := p.ActiveCustomers(); len(got) != 1 || got[0] != "stay.com" {
		t.Fatalf("active = %v", got)
	}
}

func TestDepartErrors(t *testing.T) {
	p, _ := testProvider(t, 0)
	if err := p.Depart("ghost.com", 0); !errors.Is(err, ErrNotEnrolled) {
		t.Fatalf("depart unknown: %v", err)
	}
	if _, err := p.Enroll("x.com", ModeNS, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Depart("x.com", 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Depart("x.com", 11); !errors.Is(err, ErrNotEnrolled) {
		t.Fatalf("double depart: %v", err)
	}
}

func TestPerDomainEraSwitch(t *testing.T) {
	p, _ := testProvider(t, 500)
	early, err := p.Enroll("early.com", ModeNS, 100)
	if err != nil {
		t.Fatal(err)
	}
	late, err := p.Enroll("late.com", ModeNS, 600)
	if err != nil {
		t.Fatal(err)
	}
	if early.Issuer != ca.IssuerComodoDV {
		t.Fatalf("early issuer = %d", early.Issuer)
	}
	if late.Issuer != ca.IssuerCloudflareECC {
		t.Fatalf("late issuer = %d", late.Issuer)
	}
	if len(late.Names) != 3 { // marker + domain + wildcard
		t.Fatalf("per-domain SANs = %v", late.Names)
	}
}

func TestRenewOnlyNearExpiry(t *testing.T) {
	p, _ := testProvider(t, 0)
	if _, err := p.Enroll("r.com", ModeNS, 0); err != nil {
		t.Fatal(err)
	}
	before := len(p.Certificates())
	// Far from expiry: no-op.
	if err := p.Renew("r.com", 10, 30); err != nil {
		t.Fatal(err)
	}
	if len(p.Certificates()) != before {
		t.Fatal("renewed too early")
	}
	// Within the renewal window (365-day cert, day 350, window 30).
	if err := p.Renew("r.com", 350, 30); err != nil {
		t.Fatal(err)
	}
	if len(p.Certificates()) != before+1 {
		t.Fatal("renewal did not issue")
	}
	if err := p.Renew("ghost.com", 0, 30); !errors.Is(err, ErrNotEnrolled) {
		t.Fatalf("renew unknown: %v", err)
	}
}

func TestHasMarkerSAN(t *testing.T) {
	c, err := x509sim.New(1, 1, 1, []string{"sni123.cloudflaressl.com", "x.com"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !HasMarkerSAN(c, "cloudflaressl.com") {
		t.Fatal("marker not detected")
	}
	plain, _ := x509sim.New(1, 1, 1, []string{"x.com"}, 0, 1)
	if HasMarkerSAN(plain, "cloudflaressl.com") {
		t.Fatal("false positive marker")
	}
	// A customer-uploaded cert that happens to contain the bare suffix is
	// not a managed cert.
	bare, _ := x509sim.New(1, 1, 1, []string{"cloudflaressl.com"}, 0, 1)
	if HasMarkerSAN(bare, "cloudflaressl.com") {
		t.Fatal("bare suffix misdetected")
	}
}
