// Package cdn models a managed-TLS provider in the Cloudflare mould: it
// takes over a customer domain's traffic via NS or CNAME delegation, obtains
// and fully controls TLS certificates for the domain (§2.3 methods 2–5), and
// — critically for the paper — keeps those keys when the customer leaves.
//
// Certificate strategy follows the measured history (§5.2, Figure 5b):
// "cruise-liner" certificates packing dozens of customers into one SAN list
// (issued through COMODO until mid-2019), then per-customer certificates from
// the provider's own CA. Every managed certificate carries a marker SAN
// (sni<N>.<marker-suffix>) which is how the paper distinguishes
// provider-managed from customer-uploaded certificates.
package cdn

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"stalecert/internal/ca"
	"stalecert/internal/dnsname"
	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Mode is how a customer delegates traffic to the provider (Figure 3).
type Mode uint8

// Delegation modes.
const (
	ModeNS    Mode = iota // provider becomes the authoritative nameserver
	ModeCNAME             // www CNAME points at the provider edge
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeNS {
		return "NS"
	}
	return "CNAME"
}

// Customer is one enrolled domain.
type Customer struct {
	Domain   string
	Mode     Mode
	Enrolled simtime.Day
	Departed simtime.Day // NoDay while active
}

// Active reports whether the customer is still enrolled.
func (c Customer) Active() bool { return c.Departed == simtime.NoDay }

// Config wires a provider.
type Config struct {
	Name string
	// NameServers are the provider's authoritative NS host names
	// (e.g. kiki.ns.cloudflare.com).
	NameServers []string
	// EdgeSuffix is the CNAME target suffix (e.g. cdn.cloudflare.com).
	EdgeSuffix string
	// MarkerSuffix hosts the managed-certificate marker SANs
	// (e.g. cloudflaressl.com → sni12345.cloudflaressl.com).
	MarkerSuffix string
	// BoatSize caps customers per cruise-liner certificate (default 50).
	BoatSize int
	// CruiseCA issues cruise-liner certificates (pre-transition).
	CruiseCA *ca.CA
	// PerDomainCA issues per-customer certificates (post-transition).
	PerDomainCA *ca.CA
	// PerDomainFrom is the day the provider switches strategies; before it
	// everything is cruise-liner, from it on per-domain. Zero means
	// per-domain from the start when CruiseCA is nil.
	PerDomainFrom simtime.Day
	// Store is the DNS store delegations are installed into.
	Store *dnssim.Store
	// EdgeIPs are the provider's anycast addresses.
	EdgeIPs []string
}

// Provider is a managed-TLS provider. Safe for concurrent use.
type Provider struct {
	cfg Config

	mu        sync.Mutex
	customers map[string]*Customer
	boats     []*boat
	byDomain  map[string]*boat // active cruise-liner membership
	perDomain map[string][]*x509sim.Certificate
	nextSNI   int
	account   string
}

// boat is one cruise-liner certificate group sharing a key.
type boat struct {
	id      int
	key     x509sim.KeyID
	marker  string
	members map[string]bool
	certs   []*x509sim.Certificate // every generation issued for this boat
}

// Provider errors.
var (
	ErrEnrolled    = errors.New("cdn: domain already enrolled")
	ErrNotEnrolled = errors.New("cdn: domain not enrolled")
)

// New creates a provider.
func New(cfg Config) *Provider {
	if cfg.BoatSize == 0 {
		cfg.BoatSize = 50
	}
	return &Provider{
		cfg:       cfg,
		customers: make(map[string]*Customer),
		byDomain:  make(map[string]*boat),
		perDomain: make(map[string][]*x509sim.Certificate),
		account:   "cdn:" + cfg.Name,
	}
}

// Name returns the provider name.
func (p *Provider) Name() string { return p.cfg.Name }

// Account is the provider's CA account identity.
func (p *Provider) Account() string { return p.account }

// IsProviderRecord reports whether a DNS record delegates to this provider —
// the predicate the departure detector scans daily snapshots with.
func (p *Provider) IsProviderRecord(r dnssim.Record) bool {
	switch r.Type {
	case dnssim.TypeNS:
		for _, ns := range p.cfg.NameServers {
			if r.Data == ns {
				return true
			}
		}
	case dnssim.TypeCNAME:
		return dnsname.IsSubdomain(r.Data, p.cfg.EdgeSuffix)
	}
	return false
}

// IsManagedCert reports whether a certificate is provider-managed: it
// carries an sni<N>.<marker-suffix> SAN.
func (p *Provider) IsManagedCert(c *x509sim.Certificate) bool {
	return HasMarkerSAN(c, p.cfg.MarkerSuffix)
}

// HasMarkerSAN reports whether a certificate carries a managed-TLS marker
// SAN under the given suffix.
func HasMarkerSAN(c *x509sim.Certificate, markerSuffix string) bool {
	for _, san := range c.Names {
		if dnsname.IsSubdomain(san, markerSuffix) && strings.HasPrefix(san, "sni") && san != markerSuffix {
			return true
		}
	}
	return false
}

// Enroll takes a customer domain onto the provider at day: installs the
// delegation into DNS and issues (or re-issues) the managed certificate.
func (p *Provider) Enroll(domain string, mode Mode, day simtime.Day) (*x509sim.Certificate, error) {
	domain = dnsname.Canonical(domain)
	p.mu.Lock()
	if c, ok := p.customers[domain]; ok && c.Active() {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrEnrolled, domain)
	}
	p.customers[domain] = &Customer{Domain: domain, Mode: mode, Enrolled: day, Departed: simtime.NoDay}
	p.mu.Unlock()

	if err := p.installDNS(domain, mode); err != nil {
		return nil, err
	}
	if p.usePerDomain(day) {
		return p.issuePerDomain(domain, day)
	}
	return p.enrollInBoat(domain, day)
}

func (p *Provider) usePerDomain(day simtime.Day) bool {
	if p.cfg.CruiseCA == nil {
		return true
	}
	if p.cfg.PerDomainCA == nil {
		return false
	}
	return day >= p.cfg.PerDomainFrom
}

func (p *Provider) installDNS(domain string, mode Mode) error {
	if p.cfg.Store == nil {
		return nil
	}
	zone := p.findZone(domain)
	if zone == nil {
		return fmt.Errorf("cdn: no zone for %q", domain)
	}
	var err error
	p.cfg.Store.Mutate(func() {
		switch mode {
		case ModeNS:
			zone.Remove(domain, dnssim.TypeNS, "")
			for _, ns := range p.cfg.NameServers {
				if e := zone.Add(dnssim.Record{Name: domain, Type: dnssim.TypeNS, TTL: 86400, Data: ns}); e != nil {
					err = e
					return
				}
			}
			if len(p.cfg.EdgeIPs) > 0 {
				zone.Remove(domain, dnssim.TypeA, "")
			}
			for _, ip := range p.cfg.EdgeIPs {
				if e := zone.Add(dnssim.Record{Name: domain, Type: dnssim.TypeA, TTL: 300, Data: ip}); e != nil {
					err = e
					return
				}
			}
		case ModeCNAME:
			www := "www." + domain
			zone.Remove(www, dnssim.TypeCNAME, "")
			target := edgeLabel(domain) + "." + p.cfg.EdgeSuffix
			if e := zone.Add(dnssim.Record{Name: www, Type: dnssim.TypeCNAME, TTL: 300, Data: target}); e != nil {
				err = e
				return
			}
		}
	})
	return err
}

func (p *Provider) removeDNS(domain string, mode Mode) {
	if p.cfg.Store == nil {
		return
	}
	zone := p.findZone(domain)
	if zone == nil {
		return
	}
	p.cfg.Store.Mutate(func() {
		switch mode {
		case ModeNS:
			for _, ns := range p.cfg.NameServers {
				zone.Remove(domain, dnssim.TypeNS, ns)
			}
		case ModeCNAME:
			target := edgeLabel(domain) + "." + p.cfg.EdgeSuffix
			zone.Remove("www."+domain, dnssim.TypeCNAME, target)
		}
	})
}

func (p *Provider) findZone(domain string) *dnssim.Zone {
	for n := domain; n != ""; n = dnsname.Parent(n) {
		if z := p.cfg.Store.Zone(n); z != nil && z.Apex != domain {
			return z
		}
	}
	return nil
}

// edgeLabel derives a stable provider-side label for a customer domain.
func edgeLabel(domain string) string {
	return strings.ReplaceAll(domain, ".", "-")
}

func (p *Provider) enrollInBoat(domain string, day simtime.Day) (*x509sim.Certificate, error) {
	p.mu.Lock()
	var b *boat
	for _, cand := range p.boats {
		if len(cand.members) < p.cfg.BoatSize {
			b = cand
			break
		}
	}
	if b == nil {
		p.nextSNI++
		b = &boat{
			id:      p.nextSNI,
			marker:  fmt.Sprintf("sni%d.%s", p.nextSNI, p.cfg.MarkerSuffix),
			members: make(map[string]bool),
		}
		p.boats = append(p.boats, b)
	}
	b.members[domain] = true
	p.byDomain[domain] = b
	p.mu.Unlock()
	return p.reissueBoat(b, day)
}

// reissueBoat issues a fresh cruise-liner certificate for the boat's current
// membership, reusing the boat key (the paper's "hundreds of
// temporally-overlapping certificates differing by a handful of domains").
func (p *Provider) reissueBoat(b *boat, day simtime.Day) (*x509sim.Certificate, error) {
	p.mu.Lock()
	names := make([]string, 0, len(b.members)+1)
	names = append(names, b.marker)
	for d := range b.members {
		names = append(names, d, "*."+d)
	}
	sort.Strings(names)
	key := b.key
	p.mu.Unlock()
	if len(names) == 1 {
		return nil, nil // boat emptied; nothing to issue
	}
	cert, err := p.cfg.CruiseCA.Issue(ca.Request{Account: p.account, Names: names, Key: key}, day)
	if err != nil {
		return nil, fmt.Errorf("cdn: cruise-liner issue: %w", err)
	}
	p.mu.Lock()
	if b.key == 0 {
		b.key = cert.Key
	}
	b.certs = append(b.certs, cert)
	p.mu.Unlock()
	return cert, nil
}

func (p *Provider) issuePerDomain(domain string, day simtime.Day) (*x509sim.Certificate, error) {
	p.mu.Lock()
	p.nextSNI++
	marker := fmt.Sprintf("sni%d.%s", p.nextSNI, p.cfg.MarkerSuffix)
	p.mu.Unlock()
	cert, err := p.cfg.PerDomainCA.Issue(ca.Request{
		Account: p.account,
		Names:   []string{marker, domain, "*." + domain},
	}, day)
	if err != nil {
		return nil, fmt.Errorf("cdn: per-domain issue: %w", err)
	}
	p.mu.Lock()
	p.perDomain[domain] = append(p.perDomain[domain], cert)
	p.mu.Unlock()
	return cert, nil
}

// Renew re-issues the managed certificate(s) covering a domain when they are
// within renewBefore days of expiry. The world simulator calls this on the
// provider's automation cadence.
func (p *Provider) Renew(domain string, day simtime.Day, renewBefore int) error {
	p.mu.Lock()
	c, ok := p.customers[domain]
	if !ok || !c.Active() {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotEnrolled, domain)
	}
	b := p.byDomain[domain]
	var latest *x509sim.Certificate
	if b != nil && len(b.certs) > 0 {
		latest = b.certs[len(b.certs)-1]
	} else if pd := p.perDomain[domain]; len(pd) > 0 {
		latest = pd[len(pd)-1]
	}
	p.mu.Unlock()
	if latest == nil || int(latest.NotAfter-day) > renewBefore {
		return nil
	}
	if b != nil {
		_, err := p.reissueBoat(b, day)
		return err
	}
	_, err := p.issuePerDomain(domain, day)
	return err
}

// Depart removes the customer at day: delegation records are withdrawn and
// any cruise-liner boat is reissued without the domain. The provider keeps
// every key — including the ones on still-valid certificates naming the
// departed domain, which is precisely the third-party staleness §5.3
// measures.
func (p *Provider) Depart(domain string, day simtime.Day) error {
	domain = dnsname.Canonical(domain)
	p.mu.Lock()
	c, ok := p.customers[domain]
	if !ok || !c.Active() {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotEnrolled, domain)
	}
	c.Departed = day
	b := p.byDomain[domain]
	if b != nil {
		delete(b.members, domain)
		delete(p.byDomain, domain)
	}
	mode := c.Mode
	p.mu.Unlock()

	p.removeDNS(domain, mode)
	if b != nil && p.cfg.CruiseCA != nil {
		if _, err := p.reissueBoat(b, day); err != nil {
			return err
		}
	}
	return nil
}

// Customer returns the customer record for a domain.
func (p *Provider) Customer(domain string) (Customer, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.customers[dnsname.Canonical(domain)]
	if !ok {
		return Customer{}, false
	}
	return *c, true
}

// ActiveCustomers lists currently enrolled domains, sorted.
func (p *Provider) ActiveCustomers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for d, c := range p.customers {
		if c.Active() {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// Certificates returns every managed certificate the provider has obtained,
// in issuance order per group.
func (p *Provider) Certificates() []*x509sim.Certificate {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*x509sim.Certificate
	for _, b := range p.boats {
		out = append(out, b.certs...)
	}
	domains := make([]string, 0, len(p.perDomain))
	for d := range p.perDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		out = append(out, p.perDomain[d]...)
	}
	return out
}
