package revcheck

import (
	"context"
	"encoding/binary"

	"stalecert/internal/crl"
	"stalecert/internal/crlite"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// CRLiteChecker wraps a Bloom-filter cascade as a Checker. The filter is
// local to the client, so lookups never touch the network: an on-path
// attacker cannot turn it into a soft-fail bypass, which is why the paper
// names CRLite-style designs as the path to effective revocation (§7.2).
func CRLiteChecker(filter *crlite.Filter) Checker {
	return CheckerFunc(func(_ context.Context, cert *x509sim.Certificate, _ simtime.Day) (Status, crl.Reason, error) {
		if filter.IsRevoked(dedupKeyBytes(cert)) {
			return StatusRevoked, crl.Unspecified, nil
		}
		return StatusGood, 0, nil
	})
}

// dedupKeyBytes serialises a certificate's (issuer, serial) join key for
// filter membership.
func dedupKeyBytes(cert *x509sim.Certificate) []byte {
	b := make([]byte, 10)
	binary.BigEndian.PutUint16(b, uint16(cert.Issuer))
	binary.BigEndian.PutUint64(b[2:], uint64(cert.Serial))
	return b
}

// BuildCRLiteFilter constructs a cascade for a certificate universe given
// the revoked subset, keyed by (issuer, serial).
func BuildCRLiteFilter(universe []*x509sim.Certificate, isRevoked func(*x509sim.Certificate) bool) (*crlite.Filter, error) {
	var revoked, valid [][]byte
	for _, c := range universe {
		if isRevoked(c) {
			revoked = append(revoked, dedupKeyBytes(c))
		} else {
			valid = append(valid, dedupKeyBytes(c))
		}
	}
	return crlite.Build(revoked, valid, 0)
}
