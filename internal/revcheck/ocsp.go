package revcheck

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"stalecert/internal/crl"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// This file implements an OCSP-style online status protocol (RFC 6960 in
// spirit): a binary request/response over HTTP POST, a responder backed by
// CRL authorities, and a client-side checker.

// OCSP wire format (all big-endian):
//
//	request:  magic(1)=0xA0 | issuer(2) | serial(8)
//	response: magic(1)=0xA1 | status(1) | reason(1) | revokedAt(4) | producedAt(4)
const (
	ocspReqMagic  = 0xA0
	ocspRespMagic = 0xA1
	ocspReqLen    = 1 + 2 + 8
	ocspRespLen   = 1 + 1 + 1 + 4 + 4
)

// OCSPResponse is a parsed responder answer.
type OCSPResponse struct {
	Status     Status
	Reason     crl.Reason
	RevokedAt  simtime.Day
	ProducedAt simtime.Day
}

// MarshalOCSPRequest encodes a status request for a certificate key.
func MarshalOCSPRequest(key x509sim.DedupKey) []byte {
	b := make([]byte, ocspReqLen)
	b[0] = ocspReqMagic
	binary.BigEndian.PutUint16(b[1:], uint16(key.Issuer))
	binary.BigEndian.PutUint64(b[3:], uint64(key.Serial))
	return b
}

// UnmarshalOCSPRequest decodes a status request.
func UnmarshalOCSPRequest(b []byte) (x509sim.DedupKey, error) {
	if len(b) != ocspReqLen || b[0] != ocspReqMagic {
		return x509sim.DedupKey{}, errors.New("revcheck: malformed OCSP request")
	}
	return x509sim.DedupKey{
		Issuer: x509sim.IssuerID(binary.BigEndian.Uint16(b[1:])),
		Serial: x509sim.SerialNumber(binary.BigEndian.Uint64(b[3:])),
	}, nil
}

// MarshalOCSPResponse encodes a responder answer.
func MarshalOCSPResponse(r OCSPResponse) []byte {
	b := make([]byte, ocspRespLen)
	b[0] = ocspRespMagic
	b[1] = byte(r.Status)
	b[2] = byte(r.Reason)
	binary.BigEndian.PutUint32(b[3:], uint32(int32(r.RevokedAt)))
	binary.BigEndian.PutUint32(b[7:], uint32(int32(r.ProducedAt)))
	return b
}

// UnmarshalOCSPResponse decodes a responder answer.
func UnmarshalOCSPResponse(b []byte) (OCSPResponse, error) {
	if len(b) != ocspRespLen || b[0] != ocspRespMagic {
		return OCSPResponse{}, errors.New("revcheck: malformed OCSP response")
	}
	return OCSPResponse{
		Status:     Status(b[1]),
		Reason:     crl.Reason(b[2]),
		RevokedAt:  simtime.Day(int32(binary.BigEndian.Uint32(b[3:]))),
		ProducedAt: simtime.Day(int32(binary.BigEndian.Uint32(b[7:]))),
	}, nil
}

// Responder-side metrics, labelled by the status answered (or "malformed"
// for undecodable requests).
func ocspRequestCounter(status string) *obs.Counter {
	return obs.Default().Counter("ocsp_requests_total", "status", status)
}

// OCSPResponder serves status queries over HTTP POST /ocsp, backed by the
// issuing CAs' revocation authorities.
type OCSPResponder struct {
	Authorities map[x509sim.IssuerID]*crl.Authority
	now         atomic.Int64
}

// SetNow advances the responder's clock (producedAt stamps).
func (o *OCSPResponder) SetNow(d simtime.Day) { o.now.Store(int64(d)) }

// Handler returns the HTTP handler.
func (o *OCSPResponder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ocsp", func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(io.LimitReader(r.Body, 64))
		if err != nil {
			ocspRequestCounter("malformed").Inc()
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		key, err := UnmarshalOCSPRequest(raw)
		if err != nil {
			ocspRequestCounter("malformed").Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := OCSPResponse{Status: StatusGood, ProducedAt: simtime.Day(o.now.Load())}
		a, ok := o.Authorities[key.Issuer]
		if !ok {
			resp.Status = StatusUnavailable
		} else if e, revoked := a.IsRevoked(key); revoked && e.RevokedAt <= resp.ProducedAt {
			resp.Status = StatusRevoked
			resp.Reason = e.Reason
			resp.RevokedAt = e.RevokedAt
		}
		ocspRequestCounter(resp.Status.String()).Inc()
		w.Header().Set("Content-Type", "application/ocsp-response")
		_, _ = w.Write(MarshalOCSPResponse(resp))
	})
	return mux
}

// OCSPChecker queries a responder over HTTP, implementing Checker. The
// client (default client when HC is nil) is wrapped in the resilience stack:
// transient responder failures are retried with backoff, a persistently down
// responder trips a per-peer circuit, and every attempt carries per-peer
// metrics and request-ID propagation via the obs layer underneath.
type OCSPChecker struct {
	URL string // responder base URL
	HC  *http.Client

	once sync.Once
	rhc  *http.Client // HC wrapped once — the breaker must be shared across checks
}

// Check implements Checker. The caller's context bounds the HTTP round trip
// (including retries): a canceled context aborts the check immediately.
func (c *OCSPChecker) Check(ctx context.Context, cert *x509sim.Certificate, _ simtime.Day) (Status, crl.Reason, error) {
	c.once.Do(func() {
		c.rhc = resil.InstrumentClient(c.HC, resil.Options{Service: "ocsp-checker"})
	})
	hc := c.rhc
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.URL+"/ocsp", bytes.NewReader(MarshalOCSPRequest(cert.DedupKey())))
	if err != nil {
		return StatusUnavailable, 0, err
	}
	req.Header.Set("Content-Type", "application/ocsp-request")
	resp, err := hc.Do(req)
	if err != nil {
		return StatusUnavailable, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return StatusUnavailable, 0, fmt.Errorf("revcheck: responder status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return StatusUnavailable, 0, err
	}
	parsed, err := UnmarshalOCSPResponse(raw)
	if err != nil {
		return StatusUnavailable, 0, err
	}
	return parsed.Status, parsed.Reason, nil
}
