// Package revcheck models TLS-client revocation checking (§2.4): CRL- and
// OCSP-based status lookups, browser policy profiles (Chrome and Edge skip
// subscriber revocation entirely; Firefox and Safari check but soft-fail;
// curl-style clients don't check), an on-path interceptor that blackholes
// revocation traffic, and the resulting effectiveness measurement — why the
// paper concludes revocation provides little recourse against stale
// certificates.
package revcheck

import (
	"context"
	"errors"
	"fmt"

	"stalecert/internal/crl"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Status is a revocation-lookup outcome.
type Status uint8

// Lookup outcomes.
const (
	StatusGood Status = iota
	StatusRevoked
	StatusUnavailable // infrastructure unreachable / blocked
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusGood:
		return "good"
	case StatusRevoked:
		return "revoked"
	case StatusUnavailable:
		return "unavailable"
	}
	return "status?"
}

// Checker answers revocation queries for certificates. The context bounds
// any network lookup the checker performs (OCSP, CRL fetch); a canceled
// context aborts the check.
type Checker interface {
	Check(ctx context.Context, cert *x509sim.Certificate, now simtime.Day) (Status, crl.Reason, error)
}

// CheckerFunc adapts a function to Checker.
type CheckerFunc func(ctx context.Context, cert *x509sim.Certificate, now simtime.Day) (Status, crl.Reason, error)

// Check implements Checker.
func (f CheckerFunc) Check(ctx context.Context, cert *x509sim.Certificate, now simtime.Day) (Status, crl.Reason, error) {
	return f(ctx, cert, now)
}

// CRLChecker consults per-issuer authorities, as a client that downloaded
// fresh CRLs would.
type CRLChecker struct {
	// Authorities maps issuer IDs to their revocation authority.
	Authorities map[x509sim.IssuerID]*crl.Authority
}

// Check implements Checker.
func (c *CRLChecker) Check(_ context.Context, cert *x509sim.Certificate, now simtime.Day) (Status, crl.Reason, error) {
	a, ok := c.Authorities[cert.Issuer]
	if !ok {
		return StatusUnavailable, 0, fmt.Errorf("revcheck: no CRL for issuer %d", cert.Issuer)
	}
	if e, revoked := a.IsRevoked(cert.DedupKey()); revoked && e.RevokedAt <= now {
		return StatusRevoked, e.Reason, nil
	}
	return StatusGood, 0, nil
}

// ErrBlocked marks revocation traffic dropped by an on-path attacker.
var ErrBlocked = errors.New("revcheck: revocation traffic blocked")

// Intercepted wraps a checker behind an on-path attacker who drops
// revocation traffic — the paper's TLS-interception threat model, where
// soft-fail policies are defeated by simply blackholing OCSP/CRL fetches.
func Intercepted(inner Checker) Checker {
	return CheckerFunc(func(context.Context, *x509sim.Certificate, simtime.Day) (Status, crl.Reason, error) {
		return StatusUnavailable, 0, ErrBlocked
	})
}

// FailMode is what a client does when revocation status is unavailable.
type FailMode uint8

// Failure modes.
const (
	SoftFail FailMode = iota // proceed when status is unavailable
	HardFail                 // abort when status is unavailable
)

// Profile is a TLS client's revocation posture.
type Profile struct {
	Name string
	// ChecksRevocation is false for clients that never query status
	// (Chrome and Edge for subscriber certs; most non-browser clients).
	ChecksRevocation bool
	FailMode         FailMode
	// HonorsMustStaple hard-fails must-staple certificates even under
	// SoftFail (Firefox's one exception, §2.4 footnote).
	HonorsMustStaple bool
}

// The paper's client landscape.
var (
	ProfileChrome  = Profile{Name: "Chrome", ChecksRevocation: false}
	ProfileEdge    = Profile{Name: "Edge", ChecksRevocation: false}
	ProfileFirefox = Profile{Name: "Firefox", ChecksRevocation: true, FailMode: SoftFail, HonorsMustStaple: true}
	ProfileSafari  = Profile{Name: "Safari", ChecksRevocation: true, FailMode: SoftFail}
	ProfileCurl    = Profile{Name: "curl", ChecksRevocation: false}
	ProfileStrict  = Profile{Name: "hard-fail", ChecksRevocation: true, FailMode: HardFail}
)

// Profiles lists the built-in client profiles.
func Profiles() []Profile {
	return []Profile{ProfileChrome, ProfileEdge, ProfileFirefox, ProfileSafari, ProfileCurl, ProfileStrict}
}

// Decision is the outcome of a client's revocation evaluation.
type Decision struct {
	Accepted bool
	// Checked reports whether a status lookup was attempted.
	Checked bool
	// Status is the lookup result when Checked.
	Status Status
}

// Evaluate runs a profile's revocation logic for a certificate. mustStaple
// marks certificates carrying the OCSP must-staple extension.
func (p Profile) Evaluate(ctx context.Context, cert *x509sim.Certificate, now simtime.Day, checker Checker, mustStaple bool) Decision {
	if !p.ChecksRevocation {
		return Decision{Accepted: true}
	}
	status, _, err := checker.Check(ctx, cert, now)
	if err != nil || status == StatusUnavailable {
		if p.FailMode == HardFail || (mustStaple && p.HonorsMustStaple) {
			return Decision{Accepted: false, Checked: true, Status: StatusUnavailable}
		}
		return Decision{Accepted: true, Checked: true, Status: StatusUnavailable} // soft-fail
	}
	return Decision{Accepted: status != StatusRevoked, Checked: true, Status: status}
}

// EffectivenessRow measures one profile's protection against a revoked
// stale-certificate population.
type EffectivenessRow struct {
	Profile Profile
	// AcceptedDirect is how many revoked certs the client accepts with
	// working revocation infrastructure.
	AcceptedDirect int
	// AcceptedIntercepted is how many it accepts when an on-path attacker
	// blocks revocation traffic (the scenario that matters for stale-cert
	// abuse).
	AcceptedIntercepted int
	Total               int
}

// MeasureEffectiveness evaluates every profile against a set of revoked
// certificates, with and without an interceptor, reproducing the paper's
// argument that revocation is "absent or easily circumvented".
func MeasureEffectiveness(ctx context.Context, certs []*x509sim.Certificate, now simtime.Day, checker Checker, mustStaple func(*x509sim.Certificate) bool) []EffectivenessRow {
	blocked := Intercepted(checker)
	rows := make([]EffectivenessRow, 0, len(Profiles()))
	for _, p := range Profiles() {
		row := EffectivenessRow{Profile: p, Total: len(certs)}
		for _, cert := range certs {
			ms := mustStaple != nil && mustStaple(cert)
			if p.Evaluate(ctx, cert, now, checker, ms).Accepted {
				row.AcceptedDirect++
			}
			if p.Evaluate(ctx, cert, now, blocked, ms).Accepted {
				row.AcceptedIntercepted++
			}
		}
		rows = append(rows, row)
	}
	return rows
}
