package revcheck

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"stalecert/internal/crl"
	"stalecert/internal/crlite"
	"stalecert/internal/x509sim"
)

// ctx is the default context for checker calls in these tests; cancellation
// behaviour gets its own dedicated contexts.
var ctx = context.Background()

func testCert(t *testing.T, serial uint64) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(x509sim.SerialNumber(serial), 1, x509sim.KeyID(serial), []string{"a.com"}, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testAuthorities(t *testing.T) (map[x509sim.IssuerID]*crl.Authority, *x509sim.Certificate, *x509sim.Certificate) {
	t.Helper()
	a := crl.NewAuthority("Test CA")
	revoked := testCert(t, 1)
	good := testCert(t, 2)
	a.Revoke(revoked.Issuer, revoked.Serial, 100, crl.KeyCompromise)
	return map[x509sim.IssuerID]*crl.Authority{1: a}, revoked, good
}

func TestCRLChecker(t *testing.T) {
	auths, revoked, good := testAuthorities(t)
	c := &CRLChecker{Authorities: auths}
	st, reason, err := c.Check(ctx, revoked, 200)
	if err != nil || st != StatusRevoked || reason != crl.KeyCompromise {
		t.Fatalf("revoked check = %v %v %v", st, reason, err)
	}
	// Before the revocation day the cert is still good.
	if st, _, _ := c.Check(ctx, revoked, 50); st != StatusGood {
		t.Fatalf("pre-revocation status = %v", st)
	}
	if st, _, _ := c.Check(ctx, good, 200); st != StatusGood {
		t.Fatalf("good status = %v", st)
	}
	unknown := testCert(t, 3)
	unknown.Issuer = 99
	if st, _, err := c.Check(ctx, unknown, 200); st != StatusUnavailable || err == nil {
		t.Fatalf("unknown issuer = %v %v", st, err)
	}
}

func TestProfilesAgainstRevokedCert(t *testing.T) {
	auths, revoked, _ := testAuthorities(t)
	checker := &CRLChecker{Authorities: auths}

	cases := []struct {
		profile     Profile
		direct      bool // accepted with working infrastructure
		intercepted bool // accepted with blocked revocation traffic
	}{
		{ProfileChrome, true, true},   // never checks
		{ProfileEdge, true, true},     // never checks
		{ProfileFirefox, false, true}, // checks, soft-fails
		{ProfileSafari, false, true},  // checks, soft-fails
		{ProfileCurl, true, true},     // never checks
		{ProfileStrict, false, false}, // hard-fail
	}
	blocked := Intercepted(checker)
	for _, c := range cases {
		if got := c.profile.Evaluate(ctx, revoked, 200, checker, false).Accepted; got != c.direct {
			t.Errorf("%s direct accepted = %v, want %v", c.profile.Name, got, c.direct)
		}
		if got := c.profile.Evaluate(ctx, revoked, 200, blocked, false).Accepted; got != c.intercepted {
			t.Errorf("%s intercepted accepted = %v, want %v", c.profile.Name, got, c.intercepted)
		}
	}
}

func TestMustStapleHardFailsFirefoxOnly(t *testing.T) {
	auths, revoked, _ := testAuthorities(t)
	blocked := Intercepted(&CRLChecker{Authorities: auths})
	// Firefox honours must-staple: blocked traffic → reject.
	if ProfileFirefox.Evaluate(ctx, revoked, 200, blocked, true).Accepted {
		t.Error("Firefox accepted a blocked must-staple cert")
	}
	// Safari does not: soft-fail even with must-staple.
	if !ProfileSafari.Evaluate(ctx, revoked, 200, blocked, true).Accepted {
		t.Error("Safari should soft-fail must-staple")
	}
}

func TestMeasureEffectiveness(t *testing.T) {
	auths, revoked, _ := testAuthorities(t)
	checker := &CRLChecker{Authorities: auths}
	rows := MeasureEffectiveness(ctx, []*x509sim.Certificate{revoked}, 200, checker, nil)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]EffectivenessRow{}
	for _, r := range rows {
		byName[r.Profile.Name] = r
	}
	// The paper's conclusion in numbers: under interception, every profile
	// except hard-fail accepts the revoked certificate.
	for _, name := range []string{"Chrome", "Edge", "Firefox", "Safari", "curl"} {
		if byName[name].AcceptedIntercepted != 1 {
			t.Errorf("%s should accept under interception", name)
		}
	}
	if byName["hard-fail"].AcceptedIntercepted != 0 {
		t.Error("hard-fail should reject under interception")
	}
	if byName["Firefox"].AcceptedDirect != 0 {
		t.Error("Firefox should reject with working infrastructure")
	}
	if byName["Chrome"].AcceptedDirect != 1 {
		t.Error("Chrome never checks, should accept")
	}
}

func TestOCSPWireRoundTrip(t *testing.T) {
	key := x509sim.DedupKey{Issuer: 7, Serial: 12345}
	got, err := UnmarshalOCSPRequest(MarshalOCSPRequest(key))
	if err != nil || got != key {
		t.Fatalf("request round trip = %+v %v", got, err)
	}
	resp := OCSPResponse{Status: StatusRevoked, Reason: crl.KeyCompromise, RevokedAt: 100, ProducedAt: 200}
	got2, err := UnmarshalOCSPResponse(MarshalOCSPResponse(resp))
	if err != nil || got2 != resp {
		t.Fatalf("response round trip = %+v %v", got2, err)
	}
	if _, err := UnmarshalOCSPRequest([]byte{1, 2}); err == nil {
		t.Error("short request accepted")
	}
	if _, err := UnmarshalOCSPResponse(nil); err == nil {
		t.Error("nil response accepted")
	}
}

func TestOCSPResponderOverHTTP(t *testing.T) {
	auths, revoked, good := testAuthorities(t)
	responder := &OCSPResponder{Authorities: auths}
	responder.SetNow(200)
	ts := httptest.NewServer(responder.Handler())
	defer ts.Close()

	checker := &OCSPChecker{URL: ts.URL, HC: ts.Client()}
	st, reason, err := checker.Check(ctx, revoked, 200)
	if err != nil || st != StatusRevoked || reason != crl.KeyCompromise {
		t.Fatalf("revoked over HTTP = %v %v %v", st, reason, err)
	}
	st, _, err = checker.Check(ctx, good, 200)
	if err != nil || st != StatusGood {
		t.Fatalf("good over HTTP = %v %v", st, err)
	}
	unknown := testCert(t, 9)
	unknown.Issuer = 42
	if st, _, _ := checker.Check(ctx, unknown, 200); st != StatusUnavailable {
		t.Fatalf("unknown issuer over HTTP = %v", st)
	}
	// A dead responder yields unavailable + error (soft-fail fodder).
	dead := &OCSPChecker{URL: "http://127.0.0.1:1", HC: ts.Client()}
	if st, _, err := dead.Check(ctx, good, 200); st != StatusUnavailable || err == nil {
		t.Fatalf("dead responder = %v %v", st, err)
	}
}

func TestOCSPCheckerHonorsContextCancellation(t *testing.T) {
	auths, _, good := testAuthorities(t)
	responder := &OCSPResponder{Authorities: auths}
	responder.SetNow(200)
	ts := httptest.NewServer(responder.Handler())
	defer ts.Close()

	checker := &OCSPChecker{URL: ts.URL, HC: ts.Client()}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	st, _, err := checker.Check(canceled, good, 200)
	if err == nil {
		t.Fatal("canceled context did not abort the OCSP check")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st != StatusUnavailable {
		t.Fatalf("status under cancellation = %v, want StatusUnavailable", st)
	}
	// The same checker still works once given a live context.
	if st, _, err := checker.Check(ctx, good, 200); err != nil || st != StatusGood {
		t.Fatalf("post-cancel check = %v %v", st, err)
	}
}

func TestCRLiteCheckerDefeatsInterception(t *testing.T) {
	auths, revoked, good := testAuthorities(t)
	_ = auths
	filter, err := crlite.Build(
		[][]byte{dedupKeyBytes(revoked)},
		[][]byte{dedupKeyBytes(good)},
		0,
	)
	if err != nil {
		t.Fatal(err)
	}
	checker := CRLiteChecker(filter)
	// Local filter: no network, interception is irrelevant by construction.
	st, _, err := checker.Check(ctx, revoked, 200)
	if err != nil || st != StatusRevoked {
		t.Fatalf("crlite revoked = %v %v", st, err)
	}
	if st, _, _ := checker.Check(ctx, good, 200); st != StatusGood {
		t.Fatalf("crlite good = %v", st)
	}
	// Even a hard-fail profile works offline.
	if !ProfileStrict.Evaluate(ctx, good, 200, checker, true).Accepted {
		t.Error("hard-fail profile rejected a good cert with a local filter")
	}
	if ProfileStrict.Evaluate(ctx, revoked, 200, checker, true).Accepted {
		t.Error("hard-fail profile accepted a revoked cert with a local filter")
	}
}
