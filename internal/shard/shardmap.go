package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// MapVersion identifies the shard-map document layout; bump on incompatible
// change so mixed fleets refuse to interoperate instead of mis-routing.
const MapVersion = 1

// Assignment is one replica's slice of the ring: shard Index of Count.
type Assignment struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// String renders the canonical "i/N" form (the -shard flag syntax).
func (a Assignment) String() string { return fmt.Sprintf("%d/%d", a.Index, a.Count) }

// Validate checks the assignment names a real slice.
func (a Assignment) Validate() error {
	if a.Count <= 0 {
		return fmt.Errorf("shard: assignment %s: count must be >= 1", a)
	}
	if a.Index < 0 || a.Index >= a.Count {
		return fmt.Errorf("shard: assignment %s: index out of range [0,%d)", a, a.Count)
	}
	return nil
}

// ParseAssignment parses the -shard flag's "i/N" form.
func ParseAssignment(s string) (Assignment, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Assignment{}, fmt.Errorf("shard: bad assignment %q (want i/N, e.g. 0/3)", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(is))
	n, err2 := strconv.Atoi(strings.TrimSpace(ns))
	if err1 != nil || err2 != nil {
		return Assignment{}, fmt.Errorf("shard: bad assignment %q (want i/N, e.g. 0/3)", s)
	}
	a := Assignment{Index: i, Count: n}
	return a, a.Validate()
}

// Member is one shard's entry in the fleet map. Addr is the shard's API base
// URL; replicas serving their own /v1/shardmap omit it. Replicas, when
// present, lists every base URL serving this slice (Addr is then the first
// replica, kept for wire compatibility with single-replica maps).
type Member struct {
	Index    int      `json:"index"`
	Addr     string   `json:"addr,omitempty"`
	Replicas []string `json:"replicas,omitempty"`
}

// Group returns the slice's replica addresses: Replicas when populated, else
// the single Addr. Callers route to any member of the group; all replicas of
// a slice pin identical SHARD files and tail the same log.
func (m Member) Group() []string {
	if len(m.Replicas) > 0 {
		return m.Replicas
	}
	if m.Addr != "" {
		return []string{m.Addr}
	}
	return nil
}

// Map is the versioned, epoch-numbered shard-map document. The gateway
// serves its configured map at /v1/shardmap; each staleapid serves a Self
// view of its own slice. Two processes interoperate only when version,
// epoch, hash and vnodes all agree — the gateway validates every shard's
// self-report against its map and refuses to route to a replica holding a
// different ring.
type Map struct {
	Version int      `json:"version"`
	Epoch   uint64   `json:"epoch"`
	Hash    string   `json:"hash"`
	VNodes  int      `json:"vnodes"`
	Shards  []Member `json:"shards"`
}

// NewMap builds an epoch's map over the given shard base URLs, in ring-index
// order.
func NewMap(epoch uint64, vnodes int, addrs []string) Map {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := Map{Version: MapVersion, Epoch: epoch, Hash: HashName, VNodes: vnodes}
	for i, a := range addrs {
		m.Shards = append(m.Shards, Member{Index: i, Addr: a})
	}
	return m
}

// NewReplicatedMap builds an epoch's map where each slice is served by a
// replica group (one or more base URLs), in ring-index order. Single-address
// groups degenerate to the NewMap wire form.
func NewReplicatedMap(epoch uint64, vnodes int, groups [][]string) Map {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := Map{Version: MapVersion, Epoch: epoch, Hash: HashName, VNodes: vnodes}
	for i, g := range groups {
		mem := Member{Index: i}
		if len(g) > 0 {
			mem.Addr = g[0]
		}
		if len(g) > 1 {
			mem.Replicas = append([]string(nil), g...)
		}
		m.Shards = append(m.Shards, mem)
	}
	return m
}

// Validate checks the document is a coherent ring description: known version
// and hash, positive vnodes, and members covering exactly indexes 0..N-1.
func (m Map) Validate() error {
	if m.Version != MapVersion {
		return fmt.Errorf("shard: map version %d (want %d)", m.Version, MapVersion)
	}
	if m.Hash != HashName {
		return fmt.Errorf("shard: map hash %q (want %q)", m.Hash, HashName)
	}
	if m.VNodes <= 0 {
		return fmt.Errorf("shard: map vnodes %d (want > 0)", m.VNodes)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	seen := make([]bool, len(m.Shards))
	addrs := make(map[string]int, len(m.Shards))
	for _, sh := range m.Shards {
		if sh.Index < 0 || sh.Index >= len(m.Shards) || seen[sh.Index] {
			return fmt.Errorf("shard: map indexes are not exactly 0..%d", len(m.Shards)-1)
		}
		seen[sh.Index] = true
		group := sh.Group()
		if len(group) == 0 {
			return fmt.Errorf("shard: slice %d has an empty replica group", sh.Index)
		}
		if len(sh.Replicas) > 0 && sh.Addr != "" && sh.Addr != sh.Replicas[0] {
			return fmt.Errorf("shard: slice %d addr %q is not its first replica %q",
				sh.Index, sh.Addr, sh.Replicas[0])
		}
		for _, a := range group {
			if a == "" {
				return fmt.Errorf("shard: slice %d has an empty replica address", sh.Index)
			}
			if prev, dup := addrs[a]; dup {
				if prev == sh.Index {
					return fmt.Errorf("shard: slice %d lists replica %q twice", sh.Index, a)
				}
				return fmt.Errorf("shard: replica %q serves both slice %d and slice %d", a, prev, sh.Index)
			}
			addrs[a] = sh.Index
		}
	}
	return nil
}

// Ring derives the map's consistent-hash ring.
func (m Map) Ring() (*Ring, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return NewRing(len(m.Shards), m.VNodes)
}

// Self is the shard-map view one replica serves at /v1/shardmap: the ring
// parameters it was started with, its own slice, and its live certificate
// count (so an operator — or a CI smoke — can check that the fleet's slices
// sum to the log without overlap).
type Self struct {
	Version int        `json:"version"`
	Epoch   uint64     `json:"epoch"`
	Hash    string     `json:"hash"`
	VNodes  int        `json:"vnodes"`
	Shard   Assignment `json:"shard"`
	Certs   int        `json:"certs"`
}

// Agrees reports whether a replica's self-report is consistent with this map
// placing it at index: same document version, epoch, hash and vnodes, and
// the replica believes it owns exactly that slice of a same-sized fleet.
func (m Map) Agrees(index int, s Self) error {
	switch {
	case s.Version != m.Version:
		return fmt.Errorf("shard %d: map version %d (gateway has %d)", index, s.Version, m.Version)
	case s.Epoch != m.Epoch:
		return fmt.Errorf("shard %d: map epoch %d (gateway has %d)", index, s.Epoch, m.Epoch)
	case s.Hash != m.Hash:
		return fmt.Errorf("shard %d: ring hash %q (gateway has %q)", index, s.Hash, m.Hash)
	case s.VNodes != m.VNodes:
		return fmt.Errorf("shard %d: %d vnodes (gateway has %d)", index, s.VNodes, m.VNodes)
	case s.Shard.Index != index || s.Shard.Count != len(m.Shards):
		return fmt.Errorf("shard %d: replica claims slice %s (gateway expects %d/%d)",
			index, s.Shard, index, len(m.Shards))
	}
	return nil
}
