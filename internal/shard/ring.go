// Package shard partitions the certstore keyspace across a fleet of
// staleapid replicas with a consistent-hash ring, and defines the versioned
// shard-map document the fleet agrees on.
//
// The partition key is the registrable domain (e2LD): the paper's staleness
// verdict is a per-domain computation over the domain's *whole* certificate
// history, so a domain's certificates must co-locate on one shard for the
// verdict to stay a single lookup. Certificates inherit their owner set from
// their SANs' e2LDs (a certificate spanning several e2LDs is kept by every
// owning shard so each domain's history stays complete); a certificate with
// no registrable name falls back to its fingerprint. Point lookups by bare
// fingerprint cannot recover the e2LD, so the query gateway scatter-gathers
// those — see internal/stalegw.
//
// Hashing is FNV-1a finished with a splitmix64 avalanche (the same finalizer
// loadgen's PRNG and the trace tail-sampler use), so placement is a pure
// function of (key, shard count, vnodes): every process in the fleet —
// ingesters, gateway, tests — derives the identical ring with no
// coordination. Virtual nodes smooth the per-shard load imbalance to
// O(1/sqrt(vnodes)), and growing the fleet N→N+1 moves only ~1/(N+1) of the
// keys (the consistent-hashing property the resharding story relies on).
//
// Everything is stdlib-only.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// HashName identifies the ring's hash construction in shard-map documents;
// fleets refuse to mix maps built with different hashes.
const HashName = "fnv1a-splitmix64"

// DefaultVNodes is the virtual-node count per shard. 128 keeps the max/mean
// shard load within ~±12% at 10k keys while the ring stays a few KiB.
const DefaultVNodes = 128

// hash64 maps a key to a ring position: FNV-1a for speed, finished with a
// splitmix64 avalanche because FNV's high bits mix poorly for short, similar
// keys (exactly the shape of e2LDs and hex prefixes).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// point is one virtual node: a ring position owned by a shard.
type point struct {
	pos   uint64
	owner int
}

// Ring is an immutable consistent-hash ring over shards 0..N-1. Safe for
// concurrent use.
type Ring struct {
	shards int
	vnodes int
	points []point // sorted by pos
}

// NewRing builds the ring for n shards with v virtual nodes each (v <= 0
// uses DefaultVNodes). The construction is deterministic: two processes with
// the same (n, v) derive identical rings.
func NewRing(n, v int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least 1 shard, got %d", n)
	}
	if v <= 0 {
		v = DefaultVNodes
	}
	r := &Ring{shards: n, vnodes: v, points: make([]point, 0, n*v)}
	for i := 0; i < n; i++ {
		for j := 0; j < v; j++ {
			r.points = append(r.points, point{pos: hash64(fmt.Sprintf("vnode/%d/%d", i, j)), owner: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].pos < r.points[b].pos })
	return r, nil
}

// MustRing is NewRing for static configuration; it panics on a bad shape.
func MustRing(n, v int) *Ring {
	r, err := NewRing(n, v)
	if err != nil {
		panic(err)
	}
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// VNodes returns the per-shard virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Lookup returns the shard owning key: the owner of the first virtual node
// at or clockwise of the key's ring position.
func (r *Ring) Lookup(key string) int {
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's start
	}
	return r.points[i].owner
}

// KeyForDomain is the ring key for a registrable domain. Lowercased so the
// routing decision matches the case-folded index key.
func KeyForDomain(e2ld string) string {
	return "d/" + strings.ToLower(strings.TrimSuffix(e2ld, "."))
}

// KeyForFingerprint is the ring key for a certificate fingerprint, given in
// either the 64-hex full form or the 16-hex short-prefix form. Both forms of
// one certificate produce the same key: the fingerprint is normalized to its
// canonical 16-hex prefix (the short form is a prefix of the full form), so
// routing — like caching — never splits one certificate across two
// identities.
func KeyForFingerprint(hexFP string) string {
	fp := strings.ToLower(hexFP)
	if len(fp) > 16 {
		fp = fp[:16]
	}
	return "f/" + fp
}
