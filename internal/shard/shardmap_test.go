package shard

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestReplicatedMapValidate(t *testing.T) {
	m := NewReplicatedMap(7, 64, [][]string{
		{"http://a0", "http://a1"},
		{"http://b0", "http://b1"},
	})
	if err := m.Validate(); err != nil {
		t.Fatalf("valid 2x2 map rejected: %v", err)
	}
	if got := m.Shards[0].Group(); len(got) != 2 || got[0] != "http://a0" || got[1] != "http://a1" {
		t.Fatalf("Group() = %v", got)
	}
	// Wire compatibility: Addr is the first replica, so a legacy reader
	// that only understands addr still routes somewhere valid.
	if m.Shards[1].Addr != "http://b0" {
		t.Fatalf("Addr = %q, want first replica", m.Shards[1].Addr)
	}

	single := NewReplicatedMap(7, 64, [][]string{{"http://a"}, {"http://b"}})
	if err := single.Validate(); err != nil {
		t.Fatalf("single-replica groups rejected: %v", err)
	}
	if len(single.Shards[0].Replicas) != 0 {
		t.Fatal("single-address group should use the legacy addr-only wire form")
	}
}

func TestReplicatedMapValidateRejections(t *testing.T) {
	cases := map[string]struct {
		groups [][]string
		want   string
	}{
		"empty group": {
			groups: [][]string{{"http://a"}, {}},
			want:   "empty replica group",
		},
		"empty address": {
			groups: [][]string{{"http://a", ""}, {"http://b"}},
			want:   "empty replica address",
		},
		"duplicate within slice": {
			groups: [][]string{{"http://a", "http://a"}, {"http://b"}},
			want:   "twice",
		},
		"duplicate across slices": {
			groups: [][]string{{"http://a", "http://shared"}, {"http://shared", "http://b"}},
			want:   "serves both slice",
		},
	}
	for name, tc := range cases {
		m := NewReplicatedMap(1, 64, tc.groups)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}

	// A hand-built member whose addr disagrees with its replica list is
	// ambiguous and must be rejected.
	bad := Map{Version: MapVersion, Epoch: 1, Hash: HashName, VNodes: 64,
		Shards: []Member{{Index: 0, Addr: "http://x", Replicas: []string{"http://a", "http://b"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("addr != replicas[0] accepted")
	}
}

func TestReplicatedAgrees(t *testing.T) {
	m := NewReplicatedMap(9, 64, [][]string{
		{"http://a0", "http://a1"},
		{"http://b0", "http://b1"},
	})
	ok := Self{Version: MapVersion, Epoch: 9, Hash: HashName, VNodes: 64,
		Shard: Assignment{Index: 1, Count: 2}}
	// Both replicas of slice 1 report the same slice; both must agree.
	for replica := 0; replica < 2; replica++ {
		if err := m.Agrees(1, ok); err != nil {
			t.Fatalf("replica %d of slice 1 rejected: %v", replica, err)
		}
	}

	// Mixed-epoch replica set: one replica restarted into the next epoch
	// must be rejected even though its slice assignment is right.
	stale := ok
	stale.Epoch = 10
	if err := m.Agrees(1, stale); err == nil {
		t.Error("mixed-epoch replica accepted")
	}

	// Wrong group: a replica that believes it serves a different slice
	// (mis-pinned SHARD file) must be rejected for this index.
	wrongSlice := ok
	wrongSlice.Shard = Assignment{Index: 0, Count: 2}
	if err := m.Agrees(1, wrongSlice); err == nil {
		t.Error("replica claiming the wrong slice accepted")
	}
	// Wrong fleet size: a replica from a differently-sharded deployment.
	wrongCount := ok
	wrongCount.Shard = Assignment{Index: 1, Count: 3}
	if err := m.Agrees(1, wrongCount); err == nil {
		t.Error("replica from a 3-slice fleet accepted into a 2-slice map")
	}
}

func TestReplicatedMapJSONRoundTrip(t *testing.T) {
	m := NewReplicatedMap(3, 128, [][]string{
		{"http://a0", "http://a1"},
		{"http://b"},
	})
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Map
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped map invalid: %v", err)
	}
	if g := back.Shards[0].Group(); len(g) != 2 || g[1] != "http://a1" {
		t.Fatalf("round-tripped group = %v", g)
	}
	if g := back.Shards[1].Group(); len(g) != 1 || g[0] != "http://b" {
		t.Fatalf("round-tripped single group = %v", g)
	}
}
