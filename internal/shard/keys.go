package shard

import (
	"stalecert/internal/core"
	"stalecert/internal/psl"
	"stalecert/internal/x509sim"
)

// CertOwners returns the sorted set of shards that must store cert.
//
// Ownership follows the certificate's registrable domains: every shard
// owning one of the SANs' e2LDs keeps the certificate, so each domain's full
// history lands on the domain's shard and staleness verdicts stay a single
// lookup. For the common single-e2LD certificate this is exactly one shard
// (a disjoint partition of the log); a certificate spanning several e2LDs is
// duplicated onto each owner — correctness of per-domain verdicts beats
// purity of the partition. A certificate with no registrable name (IPs,
// bare-TLD test junk) falls back to its fingerprint key so it still has a
// deterministic home.
func CertOwners(r *Ring, list *psl.List, cert *x509sim.Certificate) []int {
	e2lds := core.CertE2LDs(list, cert)
	if len(e2lds) == 0 {
		return []int{r.Lookup(KeyForFingerprint(cert.Fingerprint().Hex()))}
	}
	seen := make(map[int]bool, len(e2lds))
	var owners []int
	for _, d := range e2lds {
		o := r.Lookup(KeyForDomain(d))
		if !seen[o] {
			seen[o] = true
			owners = append(owners, o)
		}
	}
	// CertE2LDs returns sorted domains but ring positions do not preserve
	// that order; keep the owner set canonical.
	for i := 1; i < len(owners); i++ {
		for j := i; j > 0 && owners[j] < owners[j-1]; j-- {
			owners[j], owners[j-1] = owners[j-1], owners[j]
		}
	}
	return owners
}

// KeepFunc returns the ingest filter for one replica: keep exactly the
// certificates whose owner set includes index. Plugged into
// certstore.Ingester.Keep, it turns N replicas tailing one log into a
// partitioned fleet.
func KeepFunc(r *Ring, list *psl.List, index int) func(*x509sim.Certificate) bool {
	return func(cert *x509sim.Certificate) bool {
		for _, o := range CertOwners(r, list, cert) {
			if o == index {
				return true
			}
		}
		return false
	}
}
