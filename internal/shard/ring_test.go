package shard

import (
	"fmt"
	"math"
	"testing"

	"stalecert/internal/psl"
	"stalecert/internal/x509sim"
)

// Two rings with the same shape must be identical, and lookups must be a
// pure function of the key — the property that lets every process in the
// fleet (N ingesters, the gateway, tests) derive placement independently.
func TestRingDeterministicAcrossConstructions(t *testing.T) {
	a := MustRing(5, 64)
	b := MustRing(5, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("d/domain%04d.com", i)
		if ga, gb := a.Lookup(key), b.Lookup(key); ga != gb {
			t.Fatalf("lookup %q: ring A says %d, ring B says %d", key, ga, gb)
		}
	}
}

// The hash construction is part of the wire contract (shard-map documents
// carry HashName): pin a few placements so an accidental change to the hash
// or vnode naming shows up as a test failure, not as a silently re-partitioned
// fleet that can no longer find its own data.
func TestRingPlacementPinned(t *testing.T) {
	r := MustRing(4, 128)
	pinned := map[string]int{
		"d/example.com":        ringPin0,
		"d/site01.com":         ringPin1,
		"f/0123456789abcdef":   ringPin2,
		KeyForDomain("Av.GOV"): ringPin3,
	}
	for key, want := range pinned {
		if got := r.Lookup(key); got != want {
			t.Errorf("Lookup(%q) = %d, want pinned %d — the ring hash changed; "+
				"existing fleets would mis-route", key, got, want)
		}
	}
}

// Balance: with V vnodes per shard the max/mean shard load converges like
// 1/sqrt(V). At 10k keys over 4 shards with the default 128 vnodes, no shard
// may deviate from the mean by more than 25%.
func TestRingBalanceAt10kKeys(t *testing.T) {
	const (
		shards = 4
		keys   = 10000
	)
	r := MustRing(shards, DefaultVNodes)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("d/domain%05d.example", i))]++
	}
	mean := float64(keys) / shards
	for i, c := range counts {
		dev := math.Abs(float64(c)-mean) / mean
		if dev > 0.25 {
			t.Errorf("shard %d holds %d of %d keys (%.1f%% from the mean; counts %v)",
				i, c, keys, dev*100, counts)
		}
	}
}

// Growing the fleet N→N+1 must move only the slice the new shard takes over:
// ~1/(N+1) of the keys, every one of them moving TO the new shard. (A naive
// mod-N rehash would move (N-1)/N ≈ 80% and shuffle keys between surviving
// shards — the failure mode consistent hashing exists to avoid.)
func TestRingGrowthMovesMinimalKeys(t *testing.T) {
	const keys = 10000
	before := MustRing(4, DefaultVNodes)
	after := MustRing(5, DefaultVNodes)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("d/domain%05d.example", i)
		was, is := before.Lookup(key), after.Lookup(key)
		if was == is {
			continue
		}
		moved++
		if is != 4 {
			t.Fatalf("key %q moved %d→%d; growth may only move keys to the new shard 4", key, was, is)
		}
	}
	frac := float64(moved) / keys
	if frac == 0 {
		t.Fatal("no keys moved to the new shard")
	}
	// Ideal is 1/5 = 20%; allow vnode jitter but nothing like a rehash.
	if frac > 0.30 {
		t.Errorf("growth 4→5 moved %.1f%% of keys, want ~20%% (and far below a rehash's 80%%)", frac*100)
	}
}

// A domain's certificates must co-route with the domain itself: the shard
// answering /v1/domain/{e2ld}/staleness is the shard the ingest filter
// stored the domain's certificates on.
func TestCertOwnersCoRouteWithDomain(t *testing.T) {
	r := MustRing(3, DefaultVNodes)
	list := psl.Default()

	for i := 0; i < 50; i++ {
		domain := fmt.Sprintf("corouted%02d.com", i)
		cert, err := x509sim.New(x509sim.SerialNumber(i+1), 1, x509sim.KeyID(i+1),
			[]string{"www." + domain, domain}, 100, 500)
		if err != nil {
			t.Fatal(err)
		}
		owners := CertOwners(r, list, cert)
		want := r.Lookup(KeyForDomain(domain))
		if len(owners) != 1 || owners[0] != want {
			t.Fatalf("cert for %s owned by %v, domain routes to %d", domain, owners, want)
		}
		if !KeepFunc(r, list, want)(cert) {
			t.Fatalf("KeepFunc(%d) rejected %s's certificate", want, domain)
		}
		for idx := 0; idx < r.Shards(); idx++ {
			if idx != want && KeepFunc(r, list, idx)(cert) {
				t.Fatalf("KeepFunc(%d) kept %s's certificate owned by %d", idx, domain, want)
			}
		}
	}
}

// A certificate spanning several e2LDs is owned by every shard owning one of
// them — duplication, so each domain's history stays complete.
func TestCertOwnersMultiE2LD(t *testing.T) {
	r := MustRing(8, DefaultVNodes)
	list := psl.Default()
	cert, err := x509sim.New(1, 1, 1,
		[]string{"a.multi-one.com", "b.multi-two.org", "c.multi-three.net"}, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	owners := CertOwners(r, list, cert)
	want := map[int]bool{
		r.Lookup(KeyForDomain("multi-one.com")):   true,
		r.Lookup(KeyForDomain("multi-two.org")):   true,
		r.Lookup(KeyForDomain("multi-three.net")): true,
	}
	if len(owners) != len(want) {
		t.Fatalf("owners %v, want the %d distinct e2LD owners", owners, len(want))
	}
	for i, o := range owners {
		if !want[o] {
			t.Errorf("owner %d not an e2LD owner", o)
		}
		if i > 0 && owners[i-1] >= o {
			t.Errorf("owners %v not sorted unique", owners)
		}
	}
}

// Both fingerprint forms — 64-hex full and 16-hex short prefix — are one
// identity on the ring, and a cert with no registrable name still has a
// deterministic fingerprint-keyed home.
func TestFingerprintKeyNormalization(t *testing.T) {
	r := MustRing(7, DefaultVNodes)
	cert, err := x509sim.New(9, 1, 9, []string{"fpkey.example.com"}, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	fp := cert.Fingerprint()
	if KeyForFingerprint(fp.Hex()) != KeyForFingerprint(fp.String()) {
		t.Fatalf("full form key %q != short form key %q",
			KeyForFingerprint(fp.Hex()), KeyForFingerprint(fp.String()))
	}
	if r.Lookup(KeyForFingerprint(fp.Hex())) != r.Lookup(KeyForFingerprint(fp.String())) {
		t.Fatal("full and short fingerprint forms route to different shards")
	}

	// No registrable e2LD (bare public suffix): fingerprint fallback.
	bare, err := x509sim.New(10, 1, 10, []string{"com"}, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	owners := CertOwners(r, psl.Default(), bare)
	want := r.Lookup(KeyForFingerprint(bare.Fingerprint().Hex()))
	if len(owners) != 1 || owners[0] != want {
		t.Fatalf("bare-suffix cert owners %v, want fingerprint home %d", owners, want)
	}
}

func TestAssignmentParsing(t *testing.T) {
	a, err := ParseAssignment("2/5")
	if err != nil || a.Index != 2 || a.Count != 5 {
		t.Fatalf("ParseAssignment(2/5) = %+v, %v", a, err)
	}
	for _, bad := range []string{"", "3", "5/5", "-1/3", "a/b", "1/0"} {
		if _, err := ParseAssignment(bad); err == nil {
			t.Errorf("ParseAssignment(%q) accepted", bad)
		}
	}
}

func TestMapValidateAndAgrees(t *testing.T) {
	m := NewMap(3, 64, []string{"http://a", "http://b"})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ring(); err != nil {
		t.Fatal(err)
	}
	self := Self{Version: MapVersion, Epoch: 3, Hash: HashName, VNodes: 64,
		Shard: Assignment{Index: 1, Count: 2}}
	if err := m.Agrees(1, self); err != nil {
		t.Fatalf("consistent self-report rejected: %v", err)
	}
	for name, bad := range map[string]Self{
		"epoch":  {Version: MapVersion, Epoch: 4, Hash: HashName, VNodes: 64, Shard: Assignment{1, 2}},
		"hash":   {Version: MapVersion, Epoch: 3, Hash: "md5", VNodes: 64, Shard: Assignment{1, 2}},
		"vnodes": {Version: MapVersion, Epoch: 3, Hash: HashName, VNodes: 65, Shard: Assignment{1, 2}},
		"slice":  {Version: MapVersion, Epoch: 3, Hash: HashName, VNodes: 64, Shard: Assignment{0, 2}},
		"count":  {Version: MapVersion, Epoch: 3, Hash: HashName, VNodes: 64, Shard: Assignment{1, 3}},
	} {
		if err := m.Agrees(1, bad); err == nil {
			t.Errorf("mismatched %s accepted", name)
		}
	}

	dupe := Map{Version: MapVersion, Epoch: 1, Hash: HashName, VNodes: 64,
		Shards: []Member{{Index: 0}, {Index: 0}}}
	if err := dupe.Validate(); err == nil {
		t.Error("duplicate member indexes accepted")
	}
}
