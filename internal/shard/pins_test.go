package shard

// Pinned placements for TestRingPlacementPinned (ring shape 4 shards x 128
// vnodes). If a deliberate hash change invalidates these, bump HashName and
// MapVersion too — existing stores and fleets must not silently re-partition.
const (
	ringPin0 = 0
	ringPin1 = 0
	ringPin2 = 3
	ringPin3 = 3
)
