// Package stats provides the distribution machinery behind the paper's
// figures: empirical CDFs (Figures 6 and 7), survival curves (Figure 8),
// monthly bucketed series (Figures 4 and 5), and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"

	"stalecert/internal/simtime"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is an empty distribution; Add samples then query.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF builds a CDF from samples.
func NewCDF(samples []float64) *CDF {
	c := &CDF{samples: append([]float64(nil), samples...)}
	c.sort()
	return c
}

// Add appends a sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddInt appends an integer sample.
func (c *CDF) AddInt(v int) { c.Add(float64(v)) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.samples) }

// At returns P(X <= x), 0 for an empty distribution.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-th quantile (q in [0,1]) using the nearest-rank
// method; NaN for an empty distribution.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.samples[rank]
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the arithmetic mean (NaN when empty).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range c.samples {
		s += v
	}
	return s / float64(len(c.samples))
}

// Max returns the largest sample (NaN when empty).
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	return c.samples[len(c.samples)-1]
}

// Sum returns the sample total.
func (c *CDF) Sum() float64 {
	s := 0.0
	for _, v := range c.samples {
		s += v
	}
	return s
}

// Point is one (x, y) pair of a rendered curve.
type Point struct {
	X float64
	Y float64
}

// Curve renders the CDF as points at the given x positions.
func (c *CDF) Curve(xs []float64) []Point {
	out := make([]Point, len(xs))
	for i, x := range xs {
		out[i] = Point{X: x, Y: c.At(x)}
	}
	return out
}

// SurvivalAt returns P(X > x) = 1 - CDF(x), the survival function of
// Figure 8.
func (c *CDF) SurvivalAt(x float64) float64 { return 1 - c.At(x) }

// SurvivalCurve renders the survival function at the given x positions.
func (c *CDF) SurvivalCurve(xs []float64) []Point {
	out := make([]Point, len(xs))
	for i, x := range xs {
		out[i] = Point{X: x, Y: c.SurvivalAt(x)}
	}
	return out
}

// Range returns n+1 evenly spaced values covering [lo, hi].
func Range(lo, hi float64, n int) []float64 {
	if n < 1 {
		return []float64{lo}
	}
	out := make([]float64, n+1)
	step := (hi - lo) / float64(n)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// MonthlySeries buckets event counts by calendar month, optionally split by
// a string key (CA name, issuer name) — the shape of Figures 4, 5a and 5b.
type MonthlySeries struct {
	counts map[string]map[simtime.Month]int
}

// NewMonthlySeries creates an empty series.
func NewMonthlySeries() *MonthlySeries {
	return &MonthlySeries{counts: make(map[string]map[simtime.Month]int)}
}

// Add counts one event for a key in the month containing day.
func (s *MonthlySeries) Add(key string, day simtime.Day) { s.AddN(key, day, 1) }

// AddN counts n events.
func (s *MonthlySeries) AddN(key string, day simtime.Day, n int) {
	m := s.counts[key]
	if m == nil {
		m = make(map[simtime.Month]int)
		s.counts[key] = m
	}
	m[day.Month()] += n
}

// Keys returns the series keys, sorted.
func (s *MonthlySeries) Keys() []string {
	out := make([]string, 0, len(s.counts))
	for k := range s.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Months returns every month with data across all keys, sorted.
func (s *MonthlySeries) Months() []simtime.Month {
	seen := make(map[simtime.Month]bool)
	for _, m := range s.counts {
		for mo := range m {
			seen[mo] = true
		}
	}
	out := make([]simtime.Month, 0, len(seen))
	for mo := range seen {
		out = append(out, mo)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the events for (key, month).
func (s *MonthlySeries) Count(key string, m simtime.Month) int { return s.counts[key][m] }

// Total returns all events for a key.
func (s *MonthlySeries) Total(key string) int {
	t := 0
	for _, n := range s.counts[key] {
		t += n
	}
	return t
}

// PeakMonth returns the month with the most events for key, with its count.
func (s *MonthlySeries) PeakMonth(key string) (simtime.Month, int) {
	var best simtime.Month
	bestN := -1
	months := make([]simtime.Month, 0, len(s.counts[key]))
	for m := range s.counts[key] {
		months = append(months, m)
	}
	sort.Slice(months, func(i, j int) bool { return months[i] < months[j] })
	for _, m := range months {
		if n := s.counts[key][m]; n > bestN {
			best, bestN = m, n
		}
	}
	return best, bestN
}

// DailyRate summarises a count over a date range as the paper's Table 4
// "daily / total" pairs.
type DailyRate struct {
	Total int
	Days  int
}

// PerDay returns the average daily rate.
func (r DailyRate) PerDay() float64 {
	if r.Days == 0 {
		return 0
	}
	return float64(r.Total) / float64(r.Days)
}

// String renders "daily (total)".
func (r DailyRate) String() string {
	return fmt.Sprintf("%.0f/day (%d total over %d days)", r.PerDay(), r.Total, r.Days)
}
