package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"stalecert/internal/simtime"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Median() != 2 {
		t.Errorf("Median = %v", c.Median())
	}
	if c.Mean() != 2.5 {
		t.Errorf("Mean = %v", c.Mean())
	}
	if c.Max() != 4 || c.N() != 4 || c.Sum() != 10 {
		t.Error("Max/N/Sum wrong")
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 {
		t.Error("empty At != 0")
	}
	if !math.IsNaN(c.Median()) || !math.IsNaN(c.Mean()) || !math.IsNaN(c.Max()) {
		t.Error("empty summary stats should be NaN")
	}
}

func TestCDFAddUnsorted(t *testing.T) {
	var c CDF
	for _, v := range []float64{5, 1, 3} {
		c.Add(v)
	}
	if c.At(2) != 1.0/3 {
		t.Errorf("At(2) = %v", c.At(2))
	}
	c.AddInt(0)
	if c.At(0) != 0.25 {
		t.Errorf("after AddInt: At(0) = %v", c.At(0))
	}
}

func TestQuantiles(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if got := c.Quantile(0.5); got != 50 {
		t.Errorf("q50 = %v", got)
	}
	if got := c.Quantile(0.9); got != 90 {
		t.Errorf("q90 = %v", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 100 {
		t.Errorf("q1 = %v", got)
	}
}

func TestSurvival(t *testing.T) {
	c := NewCDF([]float64{10, 100, 1000})
	if got := c.SurvivalAt(10); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("S(10) = %v", got)
	}
	curve := c.SurvivalCurve([]float64{0, 10, 100, 1000})
	if curve[0].Y != 1 || curve[3].Y != 0 {
		t.Errorf("survival curve endpoints = %+v", curve)
	}
}

func TestCurveMonotone(t *testing.T) {
	c := NewCDF([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	pts := c.Curve(Range(0, 10, 20))
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF not monotone at %d: %+v", i, pts[i-1:i+1])
		}
	}
}

func TestRange(t *testing.T) {
	r := Range(0, 10, 5)
	if len(r) != 6 || r[0] != 0 || r[5] != 10 || r[3] != 6 {
		t.Fatalf("Range = %v", r)
	}
	if got := Range(5, 9, 0); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Range n=0 = %v", got)
	}
}

func TestMonthlySeries(t *testing.T) {
	s := NewMonthlySeries()
	nov21 := simtime.MustParse("2021-11-15")
	dec21 := simtime.MustParse("2021-12-01")
	jul22 := simtime.MustParse("2022-07-20")
	s.AddN("GoDaddy", nov21, 100)
	s.AddN("GoDaddy", dec21, 80)
	s.Add("ISRG (Let's Encrypt)", jul22)

	if got := s.Count("GoDaddy", simtime.MonthOf(2021, time.November)); got != 100 {
		t.Errorf("count = %d", got)
	}
	if got := s.Total("GoDaddy"); got != 180 {
		t.Errorf("total = %d", got)
	}
	if keys := s.Keys(); len(keys) != 2 || keys[0] != "GoDaddy" {
		t.Errorf("keys = %v", keys)
	}
	months := s.Months()
	if len(months) != 3 || months[0] != simtime.MonthOf(2021, time.November) {
		t.Errorf("months = %v", months)
	}
	peak, n := s.PeakMonth("GoDaddy")
	if peak != simtime.MonthOf(2021, time.November) || n != 100 {
		t.Errorf("peak = %v %d", peak, n)
	}
}

func TestDailyRate(t *testing.T) {
	r := DailyRate{Total: 900, Days: 90}
	if r.PerDay() != 10 {
		t.Errorf("PerDay = %v", r.PerDay())
	}
	if (DailyRate{}).PerDay() != 0 {
		t.Error("zero-days rate should be 0")
	}
}

func TestQuickCDFBounds(t *testing.T) {
	f := func(vals []float64, x float64) bool {
		c := NewCDF(vals)
		p := c.At(x)
		return p >= 0 && p <= 1 && c.SurvivalAt(x) == 1-p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileWithinSamples(t *testing.T) {
	f := func(vals []float64, q float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		q = math.Mod(math.Abs(q), 1)
		c := NewCDF(vals)
		got := c.Quantile(q)
		lo, hi := c.Quantile(0), c.Max()
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMedianAtLeastHalf(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		c := NewCDF(vals)
		return c.At(c.Median()) >= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
