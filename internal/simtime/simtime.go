// Package simtime provides the day-granular simulated clock used across the
// reproduction. All datasets in the paper (CT, CRL, WHOIS, active DNS) are
// collected or joined at day granularity, so a compact integer day type is
// both faster and less error-prone than time.Time arithmetic.
package simtime

import (
	"fmt"
	"time"
)

// Epoch is day zero of the simulation: 2013-01-01 UTC, just before the
// earliest CT entries the paper analyses (2013-03).
var Epoch = time.Date(2013, time.January, 1, 0, 0, 0, 0, time.UTC)

// Day counts days since Epoch. Negative values are valid and denote days
// before the epoch (used for pre-2013 registrations).
type Day int

// Sentinel values. NoDay marks an unset day; Forever sorts after every real
// day and is used for open-ended validity.
const (
	NoDay   Day = -1 << 30
	Forever Day = 1 << 30
)

// FromTime converts a wall-clock time to a Day, truncating to UTC midnight.
func FromTime(t time.Time) Day {
	return Day(t.UTC().Sub(Epoch) / (24 * time.Hour))
}

// FromDate builds a Day from a calendar date.
func FromDate(year int, month time.Month, day int) Day {
	return FromTime(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// MustParse parses a Day from "2006-01-02" format, panicking on bad input.
// It is intended for static scenario tables.
func MustParse(s string) Day {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Parse parses a Day from "2006-01-02" format.
func Parse(s string) (Day, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return NoDay, fmt.Errorf("simtime: parse %q: %w", s, err)
	}
	return FromTime(t), nil
}

// Time returns the UTC midnight instant of d.
func (d Day) Time() time.Time {
	return Epoch.Add(time.Duration(d) * 24 * time.Hour)
}

// String renders d as an ISO date, or a sentinel name.
func (d Day) String() string {
	switch d {
	case NoDay:
		return "never"
	case Forever:
		return "forever"
	}
	return d.Time().Format("2006-01-02")
}

// Year returns the calendar year containing d.
func (d Day) Year() int { return d.Time().Year() }

// Month returns a sortable month key of the form year*12+month-1.
// It is the bucketing key for the paper's monthly figures (Fig. 4, 5a, 5b).
func (d Day) Month() Month {
	t := d.Time()
	return Month(t.Year()*12 + int(t.Month()) - 1)
}

// Month is a sortable calendar-month key (year*12 + month-1).
type Month int

// MonthOf builds a Month key from a calendar year and month.
func MonthOf(year int, m time.Month) Month {
	return Month(year*12 + int(m) - 1)
}

// Year returns the calendar year of m.
func (m Month) Year() int { return int(m) / 12 }

// MonthOfYear returns the calendar month of m.
func (m Month) MonthOfYear() time.Month { return time.Month(int(m)%12 + 1) }

// First returns the first Day of month m.
func (m Month) First() Day {
	return FromTime(time.Date(m.Year(), m.MonthOfYear(), 1, 0, 0, 0, 0, time.UTC))
}

// String renders m as "2006-01".
func (m Month) String() string {
	return fmt.Sprintf("%04d-%02d", m.Year(), int(m.MonthOfYear()))
}

// Span is an inclusive-start, exclusive-end day interval [Start, End).
// A certificate valid on notBefore..notAfter maps to
// Span{notBefore, notAfter+1} when inclusive semantics are needed; this repo
// stores certificate validity as [NotBefore, NotAfter] inclusive and uses
// Span for derived intervals such as staleness periods.
type Span struct {
	Start Day
	End   Day
}

// Len returns the number of days in the span, or 0 for empty/inverted spans.
func (s Span) Len() int {
	if s.End <= s.Start {
		return 0
	}
	return int(s.End - s.Start)
}

// Contains reports whether day d falls inside the span.
func (s Span) Contains(d Day) bool { return d >= s.Start && d < s.End }

// Intersect returns the overlap of two spans (possibly empty).
func (s Span) Intersect(o Span) Span {
	r := Span{Start: max(s.Start, o.Start), End: min(s.End, o.End)}
	if r.End < r.Start {
		r.End = r.Start
	}
	return r
}

// String renders the span as "[start, end)".
func (s Span) String() string {
	return fmt.Sprintf("[%s, %s)", s.Start, s.End)
}
