package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEpochIsDayZero(t *testing.T) {
	if d := FromTime(Epoch); d != 0 {
		t.Fatalf("FromTime(Epoch) = %d, want 0", d)
	}
}

func TestFromDateRoundTrip(t *testing.T) {
	cases := []struct {
		y    int
		m    time.Month
		d    int
		want string
	}{
		{2013, time.January, 1, "2013-01-01"},
		{2013, time.March, 15, "2013-03-15"},
		{2020, time.February, 29, "2020-02-29"}, // leap day
		{2023, time.May, 12, "2023-05-12"},
		{2012, time.December, 31, "2012-12-31"}, // pre-epoch
		{1999, time.July, 4, "1999-07-04"},
	}
	for _, c := range cases {
		d := FromDate(c.y, c.m, c.d)
		if got := d.String(); got != c.want {
			t.Errorf("FromDate(%d,%v,%d).String() = %q, want %q", c.y, c.m, c.d, got, c.want)
		}
	}
}

func TestPreEpochIsNegative(t *testing.T) {
	if d := FromDate(2012, time.December, 31); d != -1 {
		t.Fatalf("2012-12-31 = %d, want -1", d)
	}
}

func TestParse(t *testing.T) {
	d, err := Parse("2022-08-01")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "2022-08-01" {
		t.Fatalf("round-trip = %q", d.String())
	}
	if _, err := Parse("not-a-date"); err == nil {
		t.Fatal("expected error for malformed date")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("bogus")
}

func TestSentinelStrings(t *testing.T) {
	if NoDay.String() != "never" {
		t.Errorf("NoDay.String() = %q", NoDay.String())
	}
	if Forever.String() != "forever" {
		t.Errorf("Forever.String() = %q", Forever.String())
	}
}

func TestMonthKeys(t *testing.T) {
	d := MustParse("2021-11-22")
	m := d.Month()
	if m.Year() != 2021 || m.MonthOfYear() != time.November {
		t.Fatalf("month key decomposed to %d-%v", m.Year(), m.MonthOfYear())
	}
	if m.String() != "2021-11" {
		t.Fatalf("month string = %q", m.String())
	}
	if m.First().String() != "2021-11-01" {
		t.Fatalf("month first = %q", m.First().String())
	}
	if MonthOf(2021, time.November) != m {
		t.Fatal("MonthOf mismatch")
	}
}

func TestMonthOrderingAcrossYears(t *testing.T) {
	dec := MonthOf(2018, time.December)
	jan := MonthOf(2019, time.January)
	if jan-dec != 1 {
		t.Fatalf("month keys not contiguous across year boundary: %d", jan-dec)
	}
}

func TestSpanBasics(t *testing.T) {
	s := Span{Start: 10, End: 20}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(10) || s.Contains(20) || !s.Contains(19) {
		t.Fatal("Contains boundary semantics wrong")
	}
	empty := Span{Start: 20, End: 10}
	if empty.Len() != 0 {
		t.Fatalf("inverted span Len = %d", empty.Len())
	}
}

func TestSpanIntersect(t *testing.T) {
	a := Span{Start: 0, End: 100}
	b := Span{Start: 50, End: 150}
	got := a.Intersect(b)
	if got.Start != 50 || got.End != 100 {
		t.Fatalf("intersect = %v", got)
	}
	disjoint := a.Intersect(Span{Start: 200, End: 300})
	if disjoint.Len() != 0 {
		t.Fatalf("disjoint intersect len = %d", disjoint.Len())
	}
}

func TestQuickDayRoundTrip(t *testing.T) {
	f := func(n int16) bool {
		d := Day(n)
		return FromTime(d.Time()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSpanIntersectCommutativeAndBounded(t *testing.T) {
	f := func(a0, a1, b0, b1 int16) bool {
		a := Span{Day(a0), Day(a1)}
		b := Span{Day(b0), Day(b1)}
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab.Len() != ba.Len() {
			return false
		}
		return ab.Len() <= a.Len() && ab.Len() <= b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMonthFirstWithinMonth(t *testing.T) {
	f := func(n uint16) bool {
		d := Day(int(n) % 5000) // 2013..~2026
		m := d.Month()
		first := m.First()
		return first <= d && first.Month() == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
