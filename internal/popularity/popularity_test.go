package popularity

import (
	"math/rand"
	"strconv"
	"testing"

	"stalecert/internal/simtime"
)

func TestListRank(t *testing.T) {
	l := NewList(0, []string{"top.com", "second.com", "third.com"})
	if r, ok := l.Rank("top.com"); !ok || r != 1 {
		t.Fatalf("rank = %d %v", r, ok)
	}
	if r, ok := l.Rank("third.com"); !ok || r != 3 {
		t.Fatalf("rank = %d %v", r, ok)
	}
	if _, ok := l.Rank("absent.com"); ok {
		t.Fatal("absent domain ranked")
	}
	if l.Len() != 3 {
		t.Fatal("len")
	}
}

func TestListDuplicateKeepsBestRank(t *testing.T) {
	l := NewList(0, []string{"a.com", "b.com", "a.com"})
	if r, _ := l.Rank("a.com"); r != 1 {
		t.Fatalf("duplicate rank = %d", r)
	}
}

func TestBestRankAcrossSamples(t *testing.T) {
	s := &Samples{}
	s.Add(NewList(simtime.MustParse("2020-01-01"), []string{"a.com", "b.com"}))
	s.Add(NewList(simtime.MustParse("2020-07-01"), []string{"b.com", "a.com"}))
	if r, ok := s.BestRank("a.com"); !ok || r != 1 {
		t.Fatalf("a best = %d %v", r, ok)
	}
	if r, _ := s.BestRank("b.com"); r != 1 {
		t.Fatalf("b best = %d", r)
	}
	if _, ok := s.BestRank("c.com"); ok {
		t.Fatal("unranked domain found")
	}
}

func TestBucketCountsCumulative(t *testing.T) {
	// Build one sample with known ranks.
	ranked := make([]string, 50_000)
	for i := range ranked {
		ranked[i] = "d" + strconv.Itoa(i) + ".com"
	}
	s := &Samples{}
	s.Add(NewList(0, ranked))
	domains := []string{"d0.com", "d999.com", "d5000.com", "d49999.com", "missing.com"}
	got := s.BucketCounts(domains)
	// Top1K: d0,d999 → 2; Top10K adds d5000 → 3; Top100K adds d49999 → 4; Top1M same → 4.
	want := []int{2, 3, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

func TestGenerateBiannual(t *testing.T) {
	pool := make([]string, 2000)
	for i := range pool {
		pool[i] = "p" + strconv.Itoa(i) + ".com"
	}
	from := simtime.MustParse("2014-01-01")
	to := simtime.MustParse("2022-01-01")
	s := GenerateBiannual(rand.New(rand.NewSource(3)), pool, from, to, 1000)
	lists := s.Lists()
	// ~8 years of biannual samples: 17 lists.
	if len(lists) < 15 || len(lists) > 18 {
		t.Fatalf("samples = %d", len(lists))
	}
	for _, l := range lists {
		if l.Len() != 1000 {
			t.Fatalf("list size = %d", l.Len())
		}
	}
	// Determinism.
	s2 := GenerateBiannual(rand.New(rand.NewSource(3)), pool, from, to, 1000)
	for _, d := range pool[:100] {
		r1, ok1 := s.BestRank(d)
		r2, ok2 := s2.BestRank(d)
		if r1 != r2 || ok1 != ok2 {
			t.Fatal("generation not deterministic")
		}
	}
	// Stickiness: a domain's rank should not teleport wildly between
	// consecutive samples (churn is local swaps).
	moved := 0
	checked := 0
	for _, d := range pool {
		r1, ok1 := lists[0].Rank(d)
		r2, ok2 := lists[1].Rank(d)
		if !ok1 || !ok2 {
			continue
		}
		checked++
		if abs(r1-r2) > 100 {
			moved++
		}
	}
	if checked == 0 || moved > checked/10 {
		t.Fatalf("ranks not sticky: %d/%d moved >100", moved, checked)
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
