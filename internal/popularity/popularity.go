// Package popularity stands in for the Alexa Top 1M lists behind Table 6:
// Zipf-flavoured rank lists sampled biannually, and the "most popular rank a
// domain ever held" lookup the paper buckets stale-certificate domains with.
package popularity

import (
	"math/rand"
	"sort"

	"stalecert/internal/simtime"
)

// List is one ranking sample: rank 1 is the most popular e2LD.
type List struct {
	Date  simtime.Day
	ranks map[string]int
}

// NewList builds a list from domains in rank order (index 0 = rank 1).
func NewList(date simtime.Day, ranked []string) *List {
	l := &List{Date: date, ranks: make(map[string]int, len(ranked))}
	for i, d := range ranked {
		if _, ok := l.ranks[d]; !ok {
			l.ranks[d] = i + 1
		}
	}
	return l
}

// Rank returns a domain's rank in this sample.
func (l *List) Rank(domain string) (int, bool) {
	r, ok := l.ranks[domain]
	return r, ok
}

// Len returns the list size.
func (l *List) Len() int { return len(l.ranks) }

// Samples is a time series of biannual ranking lists.
type Samples struct {
	lists []*List
}

// Add appends a sample (kept sorted by date).
func (s *Samples) Add(l *List) {
	s.lists = append(s.lists, l)
	sort.Slice(s.lists, func(i, j int) bool { return s.lists[i].Date < s.lists[j].Date })
}

// Lists returns the samples in date order.
func (s *Samples) Lists() []*List { return s.lists }

// BestRank returns the lowest (most popular) rank the domain held across all
// samples, as the paper does for Table 6.
func (s *Samples) BestRank(domain string) (int, bool) {
	best := 0
	for _, l := range s.lists {
		if r, ok := l.Rank(domain); ok && (best == 0 || r < best) {
			best = r
		}
	}
	return best, best != 0
}

// Buckets are Table 6's popularity tiers.
var Buckets = []int{1_000, 10_000, 100_000, 1_000_000}

// BucketCounts tallies, for a set of domains, how many fall within each
// popularity tier (cumulative, as the paper reports "Top 1K / 10K / ...").
func (s *Samples) BucketCounts(domains []string) []int {
	out := make([]int, len(Buckets))
	for _, d := range domains {
		r, ok := s.BestRank(d)
		if !ok {
			continue
		}
		for i, b := range Buckets {
			if r <= b {
				out[i]++
			}
		}
	}
	return out
}

// GenerateBiannual builds biannual samples between two days. Popularity is
// sticky: a base permutation of the domain pool shifts slightly between
// samples (swap churn), approximating how Alexa ranks move. The pool is
// ranked in full; callers with fewer than listSize domains get shorter lists.
func GenerateBiannual(rng *rand.Rand, pool []string, from, to simtime.Day, listSize int) *Samples {
	ranked := append([]string(nil), pool...)
	rng.Shuffle(len(ranked), func(i, j int) { ranked[i], ranked[j] = ranked[j], ranked[i] })
	s := &Samples{}
	const halfYear = 182
	for day := from; day <= to; day += halfYear {
		// Churn: swap ~5% of adjacent-ish positions.
		for k := 0; k < len(ranked)/20; k++ {
			i := rng.Intn(len(ranked))
			j := i + rng.Intn(50) - 25
			if j < 0 || j >= len(ranked) {
				continue
			}
			ranked[i], ranked[j] = ranked[j], ranked[i]
		}
		n := listSize
		if n > len(ranked) {
			n = len(ranked)
		}
		s.Add(NewList(day, ranked[:n]))
	}
	return s
}
