package stalecert_test

// Integration tests proving the wire pipeline end to end: the same world
// state collected over real sockets — CT over HTTP, CRLs over HTTP, WHOIS
// over TCP, DNS over UDP — must drive the detectors to the same results as
// the in-process fast path the simulator uses.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"stalecert"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/worldsim"
	"stalecert/internal/x509sim"
)

// wireScenario is small enough that scraping every CT entry over HTTP stays
// fast.
func wireScenario() worldsim.Scenario {
	s := worldsim.Quick()
	s.Start = simtime.MustParse("2020-01-01")
	s.End = simtime.MustParse("2021-06-30")
	s.BaseDailyRegistrations = 1.0
	s.WHOISWindow = simtime.Span{Start: s.Start, End: s.End}
	s.ADNSWindow = simtime.Span{Start: simtime.MustParse("2021-04-01"), End: simtime.MustParse("2021-06-30")}
	s.CRLWindow = simtime.Span{Start: simtime.MustParse("2021-01-01"), End: simtime.MustParse("2021-06-30")}
	s.GoDaddyBreach = false
	return s
}

func TestWireCTScrapeMatchesInProcessCorpus(t *testing.T) {
	w := stalecert.Simulate(wireScenario())
	ctx := context.Background()

	// Serve every member log over HTTP and scrape it back.
	var scraped []*x509sim.Certificate
	for _, l := range w.Logs.Logs() {
		srv := ctlog.NewServer(l)
		ts := httptest.NewServer(srv.Handler())
		client := ctlog.NewClient(ts.URL, ts.Client())
		entries, sth, err := client.Scrape(ctx, ctlog.ScrapeOptions{})
		ts.Close()
		if err != nil {
			t.Fatalf("scrape %s: %v", l.Name(), err)
		}
		if !l.VerifySTH(sth) {
			t.Fatalf("scraped STH fails verification for %s", l.Name())
		}
		for _, e := range entries {
			scraped = append(scraped, e.Cert)
		}
	}

	wireCorpus := stalecert.NewCorpus(scraped, stalecert.CorpusOptions{})
	inproc, _ := w.Logs.Dedup()
	inprocCorpus := stalecert.NewCorpus(inproc, stalecert.CorpusOptions{})
	if wireCorpus.Len() != inprocCorpus.Len() {
		t.Fatalf("wire corpus %d certs, in-process %d", wireCorpus.Len(), inprocCorpus.Len())
	}

	// The registrant-change detector must agree on both corpora.
	events := w.Whois.ReRegistrations()
	wireStale := stalecert.DetectRegistrantChange(wireCorpus, events)
	inprocStale := stalecert.DetectRegistrantChange(inprocCorpus, events)
	if len(wireStale) != len(inprocStale) {
		t.Fatalf("wire detected %d, in-process %d", len(wireStale), len(inprocStale))
	}
}

func TestWireCRLFetchMatchesWorldRevocations(t *testing.T) {
	w := stalecert.Simulate(wireScenario())

	srv := crl.NewServer(99)
	srv.SetNow(w.Today())
	var names []string
	for _, p := range w.Dir.All() {
		srv.Host(w.CAs[p.ID].Authority(), 0)
		names = append(names, p.Name)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ledger := crl.NewCoverageLedger()
	fetcher := &crl.Fetcher{Base: ts.URL, HC: ts.Client(), Ledger: ledger}
	lists, err := fetcher.FetchAll(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	var wireEntries []crl.Entry
	for _, l := range lists {
		wireEntries = append(wireEntries, l.Entries...)
	}

	// The world's collected revocation set must be a subset of what a full
	// wire fetch sees (the world may have missed CAs to scrape failures; we
	// hosted everything with failRate 0).
	wireKeys := make(map[x509sim.DedupKey]crl.Entry, len(wireEntries))
	for _, e := range wireEntries {
		wireKeys[e.Key()] = e
	}
	for _, e := range w.RevocationEntries() {
		we, ok := wireKeys[e.Key()]
		if !ok {
			t.Fatalf("revocation %+v missing from wire fetch", e)
		}
		if we.RevokedAt != e.RevokedAt || we.Reason != e.Reason {
			t.Fatalf("revocation drifted over the wire: %+v vs %+v", we, e)
		}
	}

	// And the revocation detector works on wire data.
	certs, _ := w.Logs.Dedup()
	corpus := stalecert.NewCorpus(certs, stalecert.CorpusOptions{})
	stale, stats := stalecert.DetectRevoked(corpus, wireEntries, simtime.NoDay)
	if stats.MatchedInCT == 0 || len(stale) == 0 {
		t.Fatal("wire revocations joined nothing")
	}
}

func TestWireWHOISMatchesRegistry(t *testing.T) {
	w := stalecert.Simulate(wireScenario())

	srv := whois.NewServer(&whois.RegistrySource{Registry: w.Registry})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	active := w.Registry.ActiveDomains()
	if len(active) == 0 {
		t.Fatal("no active domains")
	}
	if len(active) > 25 {
		active = active[:25]
	}
	for _, d := range active {
		rec, err := whois.Query(ctx, addr.String(), d)
		if err != nil {
			t.Fatalf("whois %s: %v", d, err)
		}
		reg, _, _ := w.Registry.Lookup(d)
		if rec.Created != reg.Created || rec.Domain != d {
			t.Fatalf("wire WHOIS for %s = %+v, registry says created=%v", d, rec, reg.Created)
		}
	}
}

func TestWireDNSScanAgreesWithScanLog(t *testing.T) {
	w := stalecert.Simulate(wireScenario())

	dnsSrv := dnssim.NewServer(w.DNS)
	addr, err := dnsSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dnsSrv.Close()

	// The last in-process scan day's provider-matched set...
	days := w.ADNS.Days()
	if len(days) == 0 {
		t.Fatal("no scan days")
	}
	lastMatched := map[string]bool{}
	for _, d := range w.ADNS.MatchedOn(len(days) - 1) {
		lastMatched[d] = true
	}

	// ...must agree with a wire scan of the same domains today (world state
	// has not advanced since the final scan day).
	sample := w.AllDomains()
	if len(sample) > 40 {
		sample = sample[:40]
	}
	scanner := &dnssim.WireScanner{Resolver: &dnssim.Resolver{ServerAddr: addr.String(), Timeout: 2 * time.Second}}
	snap, err := scanner.Scan(context.Background(), w.Today(), sample)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sample {
		wireCDN := snap.Matches(d, w.CDN.IsProviderRecord)
		if wireCDN != lastMatched[d] {
			t.Fatalf("domain %s: wire says cdn=%v, scanlog says %v", d, wireCDN, lastMatched[d])
		}
	}
}
